"""Tests for abstract-history construction (paper §3.1–3.2, Fig. 2)."""

from repro.events import RET, HistoryBuilder, HistoryOptions
from repro.ir import ProgramBuilder, Var
from repro.pointsto import analyze
from repro.specs import RetArg, RetSame, SpecSet

GET = "java.util.HashMap.get"
PUT = "java.util.HashMap.put"


def _histories(program, specs=None, options=None):
    res = analyze(program, specs=specs)
    return HistoryBuilder(program, res, options).build()


def _labels(history):
    return [(e.site.method_id, e.pos) for e in history]


def _history_of(histories, predicate):
    for obj, hs in histories.items():
        if predicate(obj):
            return sorted(hs, key=repr)
    raise AssertionError("no matching object")


def test_fig2_histories(fig2_program):
    """The six abstract objects of Fig. 2 get exactly the paper's histories."""
    hist = _histories(fig2_program)
    by_labels = {tuple(_labels(h)) for hs in dict(hist.items()).values() for h in hs}
    assert ("new:HashMap", RET) == next(
        lbl for h in by_labels for lbl in h if lbl[0] == "new:HashMap"
    )
    assert (
        ("new:HashMap", RET),
        (PUT, 0),
        (GET, 0),
    ) in by_labels  # map
    assert (("lc:str", RET), (PUT, 1)) in by_labels  # s1
    assert (("SomeApi.getFile", RET), (PUT, 2)) in by_labels  # o1
    assert (("lc:str", RET), (GET, 1)) in by_labels  # s2
    assert ((GET, RET), ("java.io.File.getName", 0)) in by_labels  # o2
    assert (("java.io.File.getName", RET),) in by_labels  # name


def test_fig2_history_merge_with_specs(fig2_program):
    """§3.3: with the HashMap specs, o1 and o2 merge into one history."""
    specs = SpecSet([RetSame(GET), RetArg(GET, PUT, 2)])
    hist = _histories(fig2_program, specs=specs)
    merged = (
        ("SomeApi.getFile", RET),
        (PUT, 2),
        (GET, RET),
        ("java.io.File.getName", 0),
    )
    all_labels = {tuple(_labels(h)) for hs in dict(hist.items()).values() for h in hs}
    assert merged in all_labels


def test_if_join_unions_histories():
    pb = ProgramBuilder()
    b = pb.function("main")
    api = b.alloc("Api")
    cond = b.const(True)
    obj = b.call("Api.make", receiver=api, dst=Var("o"))
    with b.if_(cond) as node:
        b.call("Api.left", receiver=obj, returns=False)
    with b.else_(node):
        b.call("Api.right", receiver=obj, returns=False)
    b.call("Api.after", receiver=obj, returns=False)
    pb.add(b.finish())
    hist = _histories(pb.finish())
    histories = _history_of(hist, lambda o: "Api.make" in repr(o))
    label_seqs = {tuple(_labels(h)) for h in histories}
    assert (("Api.make", RET), ("Api.left", 0), ("Api.after", 0)) in label_seqs
    assert (("Api.make", RET), ("Api.right", 0), ("Api.after", 0)) in label_seqs


def test_while_single_unrolling():
    pb = ProgramBuilder()
    b = pb.function("main")
    api = b.alloc("Api")
    cond = b.const(True)
    obj = b.call("Api.make", receiver=api, dst=Var("o"))
    with b.while_(cond):
        b.call("Api.tick", receiver=obj, returns=False)
    b.call("Api.done", receiver=obj, returns=False)
    pb.add(b.finish())
    hist = _histories(pb.finish())
    histories = _history_of(hist, lambda o: "Api.make" in repr(o))
    label_seqs = {tuple(_labels(h)) for h in histories}
    # zero iterations
    assert (("Api.make", RET), ("Api.done", 0)) in label_seqs
    # exactly one iteration (single unrolling)
    assert (("Api.make", RET), ("Api.tick", 0), ("Api.done", 0)) in label_seqs
    assert not any(
        sum(1 for lbl in seq if lbl[0] == "Api.tick") > 1 for seq in label_seqs
    )


def test_internal_call_events_inline_in_order():
    pb = ProgramBuilder()
    helper = pb.function("use", params=["p"])
    helper.call("Lib.consume", receiver=Var("p"), returns=False)
    pb.add(helper.finish())

    main = pb.function("main")
    api = main.alloc("Api")
    obj = main.call("Api.make", receiver=api)
    main.call("Lib.before", receiver=obj, returns=False)
    main.call("use", args=[obj], returns=False)
    main.call("Lib.after", receiver=obj, returns=False)
    pb.add(main.finish())

    hist = _histories(pb.finish())
    histories = _history_of(hist, lambda o: "Api.make" in repr(o))
    (h,) = histories
    methods = [lbl[0] for lbl in _labels(h)]
    assert methods == ["Api.make", "Lib.before", "Lib.consume", "Lib.after"]


def test_recursion_depth_bound():
    pb = ProgramBuilder()
    rec = pb.function("rec", params=["p"])
    rec.call("Lib.touch", receiver=Var("p"), returns=False)
    rec.call("rec", args=[Var("p")], returns=False)
    pb.add(rec.finish())
    main = pb.function("main")
    api = main.alloc("Api")
    obj = main.call("Api.make", receiver=api)
    main.call("rec", args=[obj], returns=False)
    pb.add(main.finish())

    hist = _histories(pb.finish())  # must terminate
    histories = _history_of(hist, lambda o: "Api.make" in repr(o))
    assert histories  # and produce something


def test_max_len_stops_extension():
    pb = ProgramBuilder()
    b = pb.function("main")
    api = b.alloc("Api")
    obj = b.call("Api.make", receiver=api)
    for _ in range(10):
        b.call("Lib.touch", receiver=obj, returns=False)
    pb.add(b.finish())
    prog = pb.finish()
    res = analyze(prog)
    hist = HistoryBuilder(prog, res, HistoryOptions(max_len=3)).build()
    histories = _history_of(hist, lambda o: "Api.make" in repr(o))
    assert all(len(h) <= 3 for h in histories)
