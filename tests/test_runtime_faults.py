"""The repro.runtime harness: budgets, fault injection, the degradation
ladder, quarantine manifests, and checkpoint/resume."""

import json

import pytest

from repro.cli import main
from repro.corpus import CorpusConfig, CorpusGenerator, java_registry
from repro.events.history import HistoryBuilder, HistoryOptions
from repro.ir import ProgramBuilder
from repro.pointsto import analyze
from repro.pointsto.analysis import PointsToOptions
from repro.runtime import (
    BUDGET_EXCEEDED,
    Budget,
    BudgetExceeded,
    CorpusExecutor,
    FaultPlan,
    FaultSpec,
    LOWERING_FAILURE,
    PARSE_FAILURE,
    QuarantineManifest,
    READ_FAILURE,
    RuntimeConfig,
    SOLVER_CRASH,
    TIER_CONTEXT_INSENSITIVE,
    TIER_CONTEXT_SENSITIVE,
    TIER_FIELD_INSENSITIVE,
    classify_error,
)
from repro.specs import USpecPipeline
from repro.specs.pipeline import PipelineConfig


class FakeClock:
    """Deterministic monotone clock: each reading advances by `step`."""

    def __init__(self, step: float = 0.001) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def small_program(name="prog", n_calls=2):
    pb = ProgramBuilder(source=f"{name}.java")
    fb = pb.function("main")
    api = fb.alloc("Api")
    for _ in range(n_calls):
        fb.call("Api.use", receiver=api, returns=False)
    pb.add(fb.finish())
    return pb.finish()


def pathological_program(chain=3000):
    """A long assignment chain that blows small solver budgets."""
    pb = ProgramBuilder(source="pathological.java")
    fb = pb.function("main")
    v = fb.alloc("Api")
    for _ in range(chain):
        w = fb.fresh()
        fb.assign(w, v)
        v = w
    fb.call("Api.use", receiver=v, returns=False)
    pb.add(fb.finish())
    return pb.finish()


# ----------------------------------------------------------------------
# budgets inside the solver and history builder


def test_solver_iteration_budget_raises():
    budget = Budget(max_solver_iterations=10)
    with pytest.raises(BudgetExceeded) as exc:
        analyze(pathological_program(200),
                options=PointsToOptions(budget=budget))
    assert exc.value.resource == "solver_iterations"
    assert exc.value.kind == BUDGET_EXCEEDED


def test_solver_constraint_budget_raises():
    with pytest.raises(BudgetExceeded) as exc:
        analyze(pathological_program(200),
                options=PointsToOptions(budget=Budget(max_constraints=20)))
    assert exc.value.resource == "constraints"


def test_history_event_budget_raises():
    program = small_program(n_calls=40)
    result = analyze(program)
    options = HistoryOptions(budget=Budget(max_history_events=5))
    with pytest.raises(BudgetExceeded) as exc:
        HistoryBuilder(program, result, options).build()
    assert exc.value.resource == "history_events"


def test_deadline_budget_uses_injected_clock():
    budget = Budget(deadline_seconds=0.5)
    meter = budget.meter("pointsto", clock=FakeClock(step=1.0))
    with pytest.raises(BudgetExceeded) as exc:
        meter.check_deadline()
    assert exc.value.resource == "wall_clock_seconds"


def test_unbounded_budget_changes_nothing():
    program = small_program()
    plain = analyze(program)
    budgeted = analyze(program, options=PointsToOptions(budget=Budget()))
    assert len(plain.api_sites) == len(budgeted.api_sites)


# ----------------------------------------------------------------------
# error taxonomy


def test_classify_error_taxonomy():
    assert classify_error(SyntaxError("bad")) == PARSE_FAILURE
    assert classify_error(OSError("disk")) == READ_FAILURE
    assert classify_error(RecursionError("deep"), stage="parse") == PARSE_FAILURE
    assert classify_error(TypeError("boom"), stage="lower") == LOWERING_FAILURE
    assert classify_error(KeyError("x")) == SOLVER_CRASH
    assert classify_error(BudgetExceeded("r", 2, 1)) == BUDGET_EXCEEDED


def test_fault_spec_rejects_unknown_label():
    with pytest.raises(ValueError):
        FaultSpec(program="p", error="NotALabel")


# ----------------------------------------------------------------------
# fault injection through the executor, one per taxonomy class


@pytest.mark.parametrize("label", [
    PARSE_FAILURE, LOWERING_FAILURE, SOLVER_CRASH, BUDGET_EXCEEDED,
    READ_FAILURE,
])
def test_injected_fault_quarantines_with_taxonomy_label(label):
    plan = FaultPlan([FaultSpec(program="prog", error=label)])
    executor = CorpusExecutor(runtime=RuntimeConfig(faults=plan))
    report = executor.run([small_program()])
    assert report.n_ok == 0 and report.n_quarantined == 1
    entry = report.manifest.entries[0]
    assert entry.error_kind == label
    # every ladder tier was attempted before quarantining
    assert [a.tier for a in entry.attempts] == [
        TIER_CONTEXT_SENSITIVE, TIER_CONTEXT_INSENSITIVE,
        TIER_FIELD_INSENSITIVE,
    ]
    assert all(a.error_kind == label for a in entry.attempts)


@pytest.mark.parametrize("stage", ["pointsto", "history", "graph"])
def test_fault_injection_reaches_every_stage(stage):
    plan = FaultPlan([FaultSpec(program="prog", error=SOLVER_CRASH,
                                stage=stage)])
    executor = CorpusExecutor(runtime=RuntimeConfig(faults=plan))
    report = executor.run([small_program()])
    assert report.n_quarantined == 1
    assert f"stage: {stage}" in report.manifest.entries[0].error


def test_fault_plan_only_hits_matching_programs():
    plan = FaultPlan([FaultSpec(program="bad", error=SOLVER_CRASH)])
    executor = CorpusExecutor(runtime=RuntimeConfig(faults=plan))
    report = executor.run([small_program("good"), small_program("bad")])
    assert report.n_ok == 1 and report.n_quarantined == 1
    assert "bad" in report.manifest.entries[0].program


# ----------------------------------------------------------------------
# the degradation ladder


def test_ladder_recovers_one_tier_down():
    plan = FaultPlan([FaultSpec(
        program="prog", error=SOLVER_CRASH,
        tiers=frozenset([TIER_CONTEXT_SENSITIVE]),
    )])
    executor = CorpusExecutor(runtime=RuntimeConfig(faults=plan))
    report = executor.run([small_program()])
    assert report.n_ok == 1 and report.n_quarantined == 0
    outcome = report.outcomes[0]
    assert outcome.tier == TIER_CONTEXT_INSENSITIVE
    assert outcome.degraded
    assert [a.succeeded for a in outcome.attempts] == [False, True]


def test_ladder_recovers_at_field_insensitive_tier():
    plan = FaultPlan([FaultSpec(
        program="prog", error=BUDGET_EXCEEDED,
        tiers=frozenset([TIER_CONTEXT_SENSITIVE, TIER_CONTEXT_INSENSITIVE]),
    )])
    executor = CorpusExecutor(runtime=RuntimeConfig(faults=plan))
    report = executor.run([small_program()])
    assert report.outcomes[0].tier == TIER_FIELD_INSENSITIVE


def test_field_insensitive_tier_merges_fields():
    pb = ProgramBuilder(source="fields.java")
    fb = pb.function("main")
    obj = fb.alloc("Holder")
    a = fb.alloc("A")
    fb.field_store(obj, "x", a)
    got = fb.field_load(obj, "y")
    fb.call("Api.use", receiver=got, returns=False)
    pb.add(fb.finish())
    program = pb.finish()
    precise = analyze(program)
    coarse = analyze(program, options=PointsToOptions(
        field_sensitive=False, context_k=0))
    fn, ctx = "main", ()
    assert not precise.var_pts(fn, ctx, got)  # distinct fields: no flow
    assert coarse.var_pts(fn, ctx, got)  # merged "*" cell: flows


def test_strict_mode_propagates_first_error():
    plan = FaultPlan([FaultSpec(program="prog", error=SOLVER_CRASH)])
    executor = CorpusExecutor(
        runtime=RuntimeConfig(faults=plan, strict=True))
    with pytest.raises(Exception, match="injected fault"):
        executor.run([small_program()])


def test_strict_mode_propagates_budget_exhaustion():
    executor = CorpusExecutor(runtime=RuntimeConfig(
        budget=Budget(max_solver_iterations=10), strict=True))
    with pytest.raises(BudgetExceeded):
        executor.run([pathological_program(200)])


# ----------------------------------------------------------------------
# quarantine manifest determinism and round-tripping


def run_with_fake_clock():
    plan = FaultPlan([
        FaultSpec(program="bad1", error=SOLVER_CRASH),
        FaultSpec(program="bad2", error=BUDGET_EXCEEDED),
    ])
    executor = CorpusExecutor(
        runtime=RuntimeConfig(faults=plan), clock=FakeClock())
    report = executor.run([
        small_program("bad2"), small_program("good"), small_program("bad1"),
    ])
    return report


def test_manifest_is_deterministic():
    first = run_with_fake_clock().manifest.to_json()
    second = run_with_fake_clock().manifest.to_json()
    assert first == second
    data = json.loads(first)
    assert data["n_quarantined"] == 2
    # entries sorted by program key regardless of corpus order
    programs = [e["program"] for e in data["entries"]]
    assert programs == sorted(programs)


def test_manifest_json_round_trip():
    manifest = run_with_fake_clock().manifest
    restored = QuarantineManifest.from_json(manifest.to_json())
    assert len(restored) == len(manifest)
    assert restored.by_kind() == manifest.by_kind()
    originals = {e.program: e for e in manifest.entries}
    for entry in restored.entries:
        original = originals[entry.program]
        assert entry.error_kind == original.error_kind
        assert [a.tier for a in entry.attempts] == \
            [a.tier for a in original.attempts]


def test_manifest_rejects_unknown_schema():
    with pytest.raises(ValueError):
        QuarantineManifest.from_json('{"schema_version": 99, "entries": []}')


# ----------------------------------------------------------------------
# checkpoint/resume


def corpus_with_one_bad():
    return [small_program("a"), small_program("b"), pathological_program()]


def test_checkpoint_resume_round_trip(tmp_path):
    runtime = RuntimeConfig(budget=Budget(max_solver_iterations=500),
                            checkpoint_dir=str(tmp_path / "ckpt"))
    corpus = corpus_with_one_bad()
    first = CorpusExecutor(runtime=runtime).run(corpus)
    assert first.n_ok == 2 and first.n_quarantined == 1
    assert first.n_resumed == 0

    second = CorpusExecutor(runtime=runtime).run(corpus)
    assert second.n_resumed == len(corpus)  # nothing recomputed
    assert second.n_ok == 2 and second.n_quarantined == 1
    # quarantine details survive the round trip
    entry = second.manifest.entries[0]
    assert entry.error_kind == BUDGET_EXCEEDED
    assert len(entry.attempts) == 3
    # restored bundles are fully usable downstream
    model = USpecPipeline().train_model(second.bundles)
    assert model is not None


def test_checkpoint_resume_skips_recomputation(tmp_path):
    """Resumed programs must be loaded, not re-analysed: a fault plan
    that would crash everything leaves checkpointed results intact."""
    ckpt = str(tmp_path / "ckpt")
    corpus = [small_program("a"), small_program("b")]
    CorpusExecutor(runtime=RuntimeConfig(checkpoint_dir=ckpt)).run(corpus)

    poisoned = RuntimeConfig(
        checkpoint_dir=ckpt,
        faults=FaultPlan([FaultSpec(program="", error=SOLVER_CRASH)]),
    )
    report = CorpusExecutor(runtime=poisoned).run(corpus)
    assert report.n_ok == 2  # all served from the checkpoint
    assert report.n_resumed == 2


def test_checkpoint_partial_run_resumes_remainder(tmp_path):
    """A run killed midway (simulated by running a prefix) resumes from
    the last completed program."""
    ckpt = str(tmp_path / "ckpt")
    corpus = corpus_with_one_bad()
    runtime = RuntimeConfig(budget=Budget(max_solver_iterations=500),
                            checkpoint_dir=ckpt)
    CorpusExecutor(runtime=runtime).run(corpus[:1])  # "killed" after one

    report = CorpusExecutor(runtime=runtime).run(corpus)
    assert report.n_resumed == 1
    assert report.n_ok == 2 and report.n_quarantined == 1


def test_checkpoint_survives_corrupt_index(tmp_path):
    ckpt = tmp_path / "ckpt"
    runtime = RuntimeConfig(checkpoint_dir=str(ckpt))
    corpus = [small_program("a")]
    CorpusExecutor(runtime=runtime).run(corpus)
    (ckpt / "index.json").write_text("{ not json")
    report = CorpusExecutor(runtime=runtime).run(corpus)
    assert report.n_ok == 1 and report.n_resumed == 0  # recomputed


# ----------------------------------------------------------------------
# pipeline + CLI integration


def test_pipeline_learn_surfaces_run_report():
    config = PipelineConfig(runtime=RuntimeConfig(
        budget=Budget(max_solver_iterations=500)))
    programs = CorpusGenerator(
        java_registry(), CorpusConfig(n_files=6, seed=7)).programs()
    learned = USpecPipeline(config).learn(programs + [pathological_program()])
    assert learned.run is not None
    assert learned.run.n_ok == 6
    assert learned.run.n_quarantined == 1


def test_cli_strict_budget_exhaustion_exits_3(capsys):
    code = main(["learn", "--files", "3", "--seed", "7",
                 "--budget-iterations", "1", "--strict"])
    assert code == 3
    assert "budget exceeded" in capsys.readouterr().err


def test_cli_everything_quarantined_exits_4(tmp_path, capsys):
    manifest_path = tmp_path / "quarantine.json"
    code = main(["learn", "--files", "3", "--seed", "7",
                 "--budget-iterations", "1",
                 "--quarantine-out", str(manifest_path)])
    assert code == 4
    assert "every corpus program was quarantined" in capsys.readouterr().err
    data = json.loads(manifest_path.read_text())
    assert data["n_quarantined"] == 3
    assert set(data["by_kind"]) == {BUDGET_EXCEEDED}


def test_cli_clean_run_with_quarantine_manifest(tmp_path):
    manifest_path = tmp_path / "quarantine.json"
    out = tmp_path / "specs.json"
    code = main(["learn", "--files", "6", "--seed", "7",
                 "--budget-iterations", "5000",
                 "--quarantine-out", str(manifest_path),
                 "--out", str(out)])
    assert code == 0
    assert out.exists()
    assert json.loads(manifest_path.read_text())["n_quarantined"] == 0


def test_cli_checkpoint_dir_resumes(tmp_path, capsys):
    ckpt = tmp_path / "ckpt"
    args = ["learn", "--files", "4", "--seed", "7",
            "--checkpoint-dir", str(ckpt),
            "--out", str(tmp_path / "specs.json")]
    assert main(args) == 0
    capsys.readouterr()
    assert main(args) == 0
    assert "4 resumed" in capsys.readouterr().out
