"""repro.dist: protocol framing, the loopback coordinator/worker
cluster, byte-identity with local mining, worker death, lease expiry,
chaos on workers, speculation, the parallel training reduce, and the
distributed CLI."""

import contextlib
import multiprocessing
import os
import signal
import socket
import threading
import time

import pytest

from repro.cli import main
from repro.corpus import CorpusConfig, CorpusGenerator, java_registry
from repro.dist import (
    Coordinator,
    DistConfig,
    FrameDecoder,
    PROTOCOL_VERSION,
    ProtocolError,
    encode_frame,
    pack_payload,
    recv_frame,
    resolve_runner,
    run_worker,
    runner_ref,
    send_frame,
    unpack_payload,
)
from repro.mining import MiningConfig, MiningEngine
from repro.mining.engine import _supervised_analyze
from repro.mining.supervisor import SupervisionConfig
from repro.runtime import (
    Budget,
    BudgetExceeded,
    ChaosPlan,
    ChaosSpec,
    RuntimeConfig,
)
from repro.specs.pipeline import PipelineConfig
from repro.specs.serialize import specs_to_json


def java_corpus(n=12, seed=7):
    return CorpusGenerator(
        java_registry(), CorpusConfig(n_files=n, seed=seed)).programs()


def learn(programs, *, coordinator=None, jobs=1, shards=None,
          cache_dir=None, strict=False, chaos=None, max_retries=2,
          parallel_train=False, adaptive_deadline=False, budget=None):
    config = PipelineConfig(runtime=RuntimeConfig(
        strict=strict, budget=budget or Budget(),
    ))
    supervision = SupervisionConfig(
        max_retries=max_retries,
        adaptive_deadline=adaptive_deadline,
        backoff_base=0.01,  # keep test wall-clock down
        chaos=ChaosPlan(tuple(chaos)) if chaos else None,
    )
    mining = MiningConfig(
        jobs=jobs, shards=shards,
        cache_dir=str(cache_dir) if cache_dir else None,
        supervision=supervision, parallel_train=parallel_train,
    )
    return MiningEngine(config, mining, coordinator).learn(programs)


def specs_text(learned):
    return specs_to_json(learned.specs, learned.scores)


def manifest_text(learned):
    return learned.run.manifest.to_json(timings=False)


@contextlib.contextmanager
def cluster(n=3, *, processes=False, lease=10.0, start_workers=True,
            **dist_kw):
    """A loopback coordinator plus n workers (threads or processes)."""
    dist_kw.setdefault("no_worker_timeout", 60.0)
    coordinator = Coordinator(DistConfig(
        min_workers=n if start_workers else 0,
        lease_seconds=lease, **dist_kw,
    ))
    host, port = coordinator.bind()
    workers = []
    if start_workers:
        for i in range(n):
            kwargs = {"name": f"w{i}", "connect_retries": 60}
            if processes:
                worker = multiprocessing.get_context("fork").Process(
                    target=run_worker, args=(host, port), kwargs=kwargs,
                    daemon=True,
                )
            else:
                worker = threading.Thread(
                    target=run_worker, args=(host, port), kwargs=kwargs,
                    daemon=True,
                )
            worker.start()
            workers.append(worker)
    try:
        yield coordinator, workers, (host, port)
    finally:
        coordinator.close()
        for worker in workers:
            worker.join(timeout=10)
            if processes and worker.is_alive():
                worker.kill()


# ----------------------------------------------------------------------
# protocol


def test_frame_roundtrip_and_coalesced_frames():
    decoder = FrameDecoder()
    a = encode_frame({"type": "hello", "worker": "w0"})
    b = encode_frame({"type": "ready"})
    messages = decoder.feed(a + b)
    assert [m["type"] for m in messages] == ["hello", "ready"]


def test_frame_decoder_handles_byte_by_byte_delivery():
    decoder = FrameDecoder()
    wire = encode_frame({"type": "task", "task_id": "analyze:3"})
    got = []
    for i in range(len(wire)):
        got.extend(decoder.feed(wire[i:i + 1]))
    assert len(got) == 1 and got[0]["task_id"] == "analyze:3"


def test_frame_without_type_rejected():
    decoder = FrameDecoder()
    import json
    import struct
    body = json.dumps({"nope": 1}).encode()
    with pytest.raises(ProtocolError):
        decoder.feed(struct.pack("!I", len(body)) + body)


def test_oversized_frame_announcement_rejected():
    decoder = FrameDecoder()
    import struct
    with pytest.raises(ProtocolError):
        decoder.feed(struct.pack("!I", 1 << 31))


def test_payload_roundtrip_preserves_types():
    err = BudgetExceeded("solver_iterations", 100, 50, stage="pointsto")
    restored = unpack_payload(pack_payload(err))
    assert isinstance(restored, BudgetExceeded)


def test_runner_ref_roundtrip_and_namespace_restriction():
    ref = runner_ref(_supervised_analyze)
    assert ref.startswith("repro.")
    assert resolve_runner(ref) is _supervised_analyze
    with pytest.raises(ProtocolError):
        resolve_runner("os:system")
    with pytest.raises(ProtocolError):
        resolve_runner("subprocess:run")
    with pytest.raises(ProtocolError):
        runner_ref(contextlib.contextmanager)


def test_send_and_recv_frame_over_socketpair():
    left, right = socket.socketpair()
    try:
        send_frame(left, {"type": "heartbeat", "task_id": "analyze:0"})
        got = recv_frame(right, FrameDecoder(), [])
        assert got == {"type": "heartbeat", "task_id": "analyze:0"}
    finally:
        left.close()
        right.close()


# ----------------------------------------------------------------------
# loopback cluster byte-identity


def test_loopback_cluster_matches_jobs_3(tmp_path):
    programs = java_corpus()
    local = learn(programs, jobs=3)
    with cluster(3) as (coordinator, _, _):
        dist = learn(programs, coordinator=coordinator, jobs=3,
                     cache_dir=tmp_path / "cache")
    assert specs_text(dist) == specs_text(local)
    assert manifest_text(dist) == manifest_text(local)
    assert dist.mining.distributed
    assert dist.mining.supervised
    assert dist.mining.cluster["n_workers_seen"] == 3
    assert dist.mining.cluster["n_workers_lost"] == 0
    assert dist.mining.cluster["n_tasks_dispatched"] >= dist.mining.n_shards
    # every worker should have been credited with at least one result
    assert len(dist.mining.cluster["by_worker"]) == 3


def test_parallel_train_matches_sequential_locally():
    programs = java_corpus()
    sequential = learn(programs)
    parallel = learn(programs, jobs=2, parallel_train=True)
    assert specs_text(parallel) == specs_text(sequential)
    assert parallel.mining.parallel_train
    assert not sequential.mining.parallel_train
    train_tasks = [t for t in parallel.mining.ledger.tasks
                   if t.phase == "train"]
    # one task per position-key ensemble plus the shared fallback
    assert len(train_tasks) == len(parallel.model.position_keys) + 1


def test_parallel_train_matches_sequential_distributed():
    programs = java_corpus()
    sequential = learn(programs)
    with cluster(2) as (coordinator, _, _):
        dist = learn(programs, coordinator=coordinator,
                     parallel_train=True)
    assert specs_text(dist) == specs_text(sequential)
    assert dist.mining.parallel_train


def test_adaptive_deadline_distributed_matches_baseline():
    programs = java_corpus()
    local = learn(programs, jobs=2)
    with cluster(2) as (coordinator, _, _):
        dist = learn(programs, coordinator=coordinator, jobs=2,
                     adaptive_deadline=True)
    assert specs_text(dist) == specs_text(local)


# ----------------------------------------------------------------------
# worker failure


def test_worker_sigkilled_mid_run_does_not_change_results():
    programs = java_corpus(n=20)
    local = learn(programs, jobs=3)
    with cluster(3, processes=True, lease=3.0) as (coordinator, workers, _):
        killer = threading.Timer(
            0.4, lambda: os.kill(workers[0].pid, signal.SIGKILL))
        killer.start()
        try:
            dist = learn(programs, coordinator=coordinator, jobs=3,
                         shards=8)
        finally:
            killer.cancel()
    assert specs_text(dist) == specs_text(local)
    assert manifest_text(dist) == manifest_text(local)
    assert dist.mining.cluster["n_workers_seen"] == 3


def test_transient_chaos_kill_on_worker_is_retried():
    programs = java_corpus()
    clean = learn(programs)
    chaos = [ChaosSpec("corpus_00003", "kill", until_attempt=1)]
    # chaos kill exits the whole worker daemon (os._exit), so workers
    # must be processes; the coordinator sees EOF and re-dispatches
    with cluster(3, processes=True) as (coordinator, _, _):
        dist = learn(programs, coordinator=coordinator, jobs=3,
                     chaos=chaos)
    assert specs_text(dist) == specs_text(clean)
    ledger = dist.mining.ledger
    assert ledger.n_worker_crashes >= 1
    assert ledger.n_poisoned == 0
    assert dist.mining.n_quarantined == 0
    assert dist.mining.cluster["n_workers_lost"] >= 1


def test_transient_chaos_corrupt_on_worker_is_retried():
    programs = java_corpus()
    clean = learn(programs)
    chaos = [ChaosSpec("corpus_00002", "corrupt", until_attempt=1)]
    # corrupt raises in-process (no exit), so thread workers are safe
    with cluster(2) as (coordinator, _, _):
        dist = learn(programs, coordinator=coordinator, chaos=chaos)
    assert specs_text(dist) == specs_text(clean)
    assert dist.mining.ledger.n_corrupt_results >= 1
    assert dist.mining.ledger.n_poisoned == 0


def test_lease_expiry_redispatches_and_drops_silent_worker():
    programs = java_corpus()
    local = learn(programs, jobs=2)
    got_task = threading.Event()

    def silent_worker(host, port):
        """Registers, takes one task, then never heartbeats again."""
        sock = socket.create_connection((host, port))
        decoder, pending = FrameDecoder(), []
        try:
            send_frame(sock, {"type": "hello", "worker": "silent",
                              "version": PROTOCOL_VERSION})
            assert recv_frame(sock, decoder, pending)["type"] == "welcome"
            send_frame(sock, {"type": "ready"})
            while True:
                message = recv_frame(sock, decoder, pending)
                if message is None:
                    return  # coordinator dropped us: the expected end
                if message["type"] == "task":
                    got_task.set()  # go silent holding the lease
        finally:
            sock.close()

    coordinator = Coordinator(DistConfig(
        min_workers=1, lease_seconds=0.75, no_worker_timeout=60.0,
        speculate=False,
    ))
    host, port = coordinator.bind()
    silent = threading.Thread(target=silent_worker, args=(host, port),
                              daemon=True)
    silent.start()
    coordinator.wait_for_workers(1, timeout=30.0)
    real = threading.Thread(
        target=run_worker, args=(host, port),
        kwargs={"name": "real", "connect_retries": 60}, daemon=True,
    )
    real.start()
    try:
        dist = learn(java_corpus(), coordinator=coordinator, shards=6)
    finally:
        coordinator.close()
    silent.join(timeout=10)
    real.join(timeout=10)
    assert got_task.is_set()
    assert specs_text(dist) == specs_text(local)
    assert manifest_text(dist) == manifest_text(local)
    assert coordinator.stats.n_lease_expiries >= 1
    assert dist.mining.ledger.n_worker_timeouts >= 1


def test_speculation_beats_a_straggler():
    programs = java_corpus()
    local = learn(programs, jobs=2)
    straggling = threading.Event()

    def straggler_worker(host, port):
        """Takes one task and heartbeats forever without finishing."""
        sock = socket.create_connection((host, port))
        decoder, pending = FrameDecoder(), []
        try:
            send_frame(sock, {"type": "hello", "worker": "straggler",
                              "version": PROTOCOL_VERSION})
            assert recv_frame(sock, decoder, pending)["type"] == "welcome"
            send_frame(sock, {"type": "ready"})
            while True:
                message = recv_frame(sock, decoder, pending)
                if message is None:
                    return
                if message["type"] == "task":
                    straggling.set()
                    task_id = message["task_id"]
                    while True:
                        time.sleep(0.05)
                        try:
                            send_frame(sock, {"type": "heartbeat",
                                              "task_id": task_id})
                        except OSError:
                            return
        finally:
            sock.close()

    coordinator = Coordinator(DistConfig(
        min_workers=1, lease_seconds=10.0, no_worker_timeout=60.0,
        speculation_min_observations=2, speculation_factor=2.0,
    ))
    host, port = coordinator.bind()
    slow = threading.Thread(target=straggler_worker, args=(host, port),
                            daemon=True)
    slow.start()
    coordinator.wait_for_workers(1, timeout=30.0)
    real = threading.Thread(
        target=run_worker, args=(host, port),
        kwargs={"name": "real", "connect_retries": 60}, daemon=True,
    )
    real.start()
    try:
        dist = learn(programs, coordinator=coordinator, shards=6)
    finally:
        coordinator.close()
    slow.join(timeout=10)
    real.join(timeout=10)
    assert straggling.is_set()
    assert specs_text(dist) == specs_text(local)
    assert coordinator.stats.n_speculated >= 1
    assert coordinator.stats.n_speculation_wins >= 1


def test_strict_typed_error_propagates_from_worker():
    programs = java_corpus(n=4)
    tight = Budget(max_solver_iterations=1)
    with cluster(2) as (coordinator, _, _):
        with pytest.raises(BudgetExceeded):
            learn(programs, coordinator=coordinator, strict=True,
                  budget=tight)


def test_no_worker_timeout_aborts_instead_of_hanging():
    from repro.runtime import WorkerCrash

    coordinator = Coordinator(DistConfig(
        min_workers=0, no_worker_timeout=0.5,
    ))
    coordinator.bind()
    try:
        with pytest.raises(WorkerCrash):
            learn(java_corpus(n=3), coordinator=coordinator)
    finally:
        coordinator.close()


def test_version_mismatch_is_rejected():
    coordinator = Coordinator(DistConfig(min_workers=0))
    host, port = coordinator.bind()
    sock = socket.create_connection((host, port))
    try:
        send_frame(sock, {"type": "hello", "worker": "old",
                          "version": PROTOCOL_VERSION + 1})
        pump = threading.Thread(
            target=lambda: [coordinator._pump(0.1) for _ in range(20)],
            daemon=True,
        )
        pump.start()
        reply = recv_frame(sock, FrameDecoder(), [])
        pump.join(timeout=10)
        assert reply is not None and reply["type"] == "error"
        assert coordinator.n_workers == 0
    finally:
        sock.close()
        coordinator.close()


# ----------------------------------------------------------------------
# malformed frames mid-session


def _evil_worker(host, port, garbage, got_task):
    """Registers, takes one task, then wrecks the wire with garbage."""
    sock = socket.create_connection((host, port))
    decoder, pending = FrameDecoder(), []
    try:
        send_frame(sock, {"type": "hello", "worker": "evil",
                          "version": PROTOCOL_VERSION})
        assert recv_frame(sock, decoder, pending)["type"] == "welcome"
        send_frame(sock, {"type": "ready"})
        while True:
            message = recv_frame(sock, decoder, pending)
            if message is None:
                return  # coordinator dropped us: the expected end
            if message["type"] == "task":
                got_task.set()
                sock.sendall(garbage)
                return  # truncated variant: hang up mid-frame too
    finally:
        sock.close()


def _learn_against_evil_worker(garbage):
    """Run a distributed learn with one garbage-spewing worker."""
    programs = java_corpus()
    local = learn(programs, jobs=2)
    got_task = threading.Event()
    coordinator = Coordinator(DistConfig(
        min_workers=1, lease_seconds=5.0, no_worker_timeout=60.0,
        speculate=False,
    ))
    host, port = coordinator.bind()
    evil = threading.Thread(target=_evil_worker,
                            args=(host, port, garbage, got_task),
                            daemon=True)
    evil.start()
    coordinator.wait_for_workers(1, timeout=30.0)
    real = threading.Thread(
        target=run_worker, args=(host, port),
        kwargs={"name": "real", "connect_retries": 60}, daemon=True,
    )
    real.start()
    try:
        dist = learn(programs, coordinator=coordinator, shards=6)
    finally:
        coordinator.close()
    evil.join(timeout=10)
    real.join(timeout=10)
    assert got_task.is_set()
    assert specs_text(dist) == specs_text(local)
    assert manifest_text(dist) == manifest_text(local)
    assert coordinator.stats.n_workers_lost >= 1
    assert dist.mining.ledger.n_poisoned == 0
    assert dist.mining.n_quarantined == 0
    return dist


def test_malformed_frame_mid_session_drops_worker_not_run():
    # an oversized length announcement: ProtocolError on the first
    # feed — the coordinator must drop the connection, reclaim the
    # lease, and redispatch without poisoning the shard
    import struct
    _learn_against_evil_worker(struct.pack("!I", 1 << 31) + b"garbage")


def test_undecodable_frame_mid_session_drops_worker_not_run():
    # a plausible length prefix followed by non-JSON bytes
    import struct
    body = b"\xff\xfe not json at all"
    _learn_against_evil_worker(struct.pack("!I", len(body)) + body)


def test_truncated_frame_then_eof_reclaims_lease():
    # announce 500 bytes, deliver 10, hang up: EOF mid-frame is a
    # worker loss, not a crash of the coordinator
    import struct
    _learn_against_evil_worker(struct.pack("!I", 500) + b"0123456789")


# ----------------------------------------------------------------------
# worker graceful stop (SIGTERM drain)


@contextlib.contextmanager
def _stub_coordinator():
    """A raw listening socket playing the coordinator's side by hand."""
    listener = socket.socket()
    listener.settimeout(30.0)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    try:
        yield listener, listener.getsockname()
    finally:
        listener.close()


def _handshake(conn):
    decoder, pending = FrameDecoder(), []
    hello = recv_frame(conn, decoder, pending)
    assert hello["type"] == "hello"
    send_frame(conn, {"type": "welcome", "lease": 5.0})
    ready = recv_frame(conn, decoder, pending)
    assert ready["type"] == "ready"
    return decoder, pending


def test_worker_stop_finishes_inflight_task_acks_and_deregisters(
        monkeypatch):
    import repro.dist.worker as worker_module

    started, release = threading.Event(), threading.Event()

    def slow_runner(payload, attempt):
        started.set()
        assert release.wait(30)
        return payload * 2

    monkeypatch.setattr(worker_module, "resolve_runner",
                        lambda ref: slow_runner)
    with _stub_coordinator() as (listener, (host, port)):
        stop = threading.Event()
        outcome = {}
        worker = threading.Thread(target=lambda: outcome.update(
            n=run_worker(host, port, name="graceful", stop=stop)),
            daemon=True)
        worker.start()
        conn, _ = listener.accept()
        try:
            decoder, pending = _handshake(conn)
            send_frame(conn, {"type": "task", "task_id": "t1",
                              "runner": "repro.fake:runner",
                              "payload": pack_payload(21), "attempt": 0})
            assert started.wait(30)
            stop.set()  # SIGTERM lands mid-task
            release.set()  # ... then the task finishes
            frames = []
            while True:
                message = recv_frame(conn, decoder, pending)
                assert message is not None, "worker hung up before goodbye"
                if message["type"] == "heartbeat":
                    continue
                frames.append(message)
                if message["type"] == "goodbye":
                    break
            # in-flight result acked first, then the deregistration
            assert [f["type"] for f in frames] == ["result", "goodbye"]
            assert frames[0]["status"] == "ok"
            assert unpack_payload(frames[0]["payload"]) == 42
        finally:
            conn.close()
        worker.join(timeout=30)
        assert not worker.is_alive()
        assert outcome["n"] == 1


def test_worker_stop_while_idle_sends_goodbye_and_returns():
    with _stub_coordinator() as (listener, (host, port)):
        stop = threading.Event()
        outcome = {}
        worker = threading.Thread(target=lambda: outcome.update(
            n=run_worker(host, port, name="idle", stop=stop)),
            daemon=True)
        worker.start()
        conn, _ = listener.accept()
        try:
            decoder, pending = _handshake(conn)
            stop.set()
            message = recv_frame(conn, decoder, pending)
            while message is not None and message["type"] == "heartbeat":
                message = recv_frame(conn, decoder, pending)
            assert message is not None and message["type"] == "goodbye"
        finally:
            conn.close()
        worker.join(timeout=30)
        assert not worker.is_alive()
        assert outcome["n"] == 0


def test_recv_or_stop_treats_idle_timeout_as_waiting():
    # recv_frame folds socket.timeout into its EOF path — an idle
    # worker must NOT conclude the coordinator hung up
    from repro.dist.worker import _recv_or_stop

    left, right = socket.socketpair()
    try:
        right.settimeout(0.05)  # far shorter than the idle gap below
        timer = threading.Timer(
            0.3, lambda: send_frame(left, {"type": "ready"}))
        timer.start()
        got = _recv_or_stop(right, FrameDecoder(), [], None)
        timer.join()
        assert got == {"type": "ready"}
    finally:
        left.close()
        right.close()


# ----------------------------------------------------------------------
# reconnect backoff jitter


def _collect_backoff_delays(seed, jitter=0.5):
    delays = []
    port = _free_port()  # nothing listening: every connect fails fast
    with pytest.raises(ConnectionError):
        run_worker("127.0.0.1", port, connect_retries=1,
                   retry_delay=0.5, reconnect=True, reconnect_rounds=4,
                   reconnect_max_delay=3.0, jitter=jitter,
                   jitter_seed=seed, sleep=delays.append)
    return delays


def test_backoff_jitter_deterministic_per_seed_and_bounded():
    first = _collect_backoff_delays(seed=42)
    again = _collect_backoff_delays(seed=42)
    other = _collect_backoff_delays(seed=43)
    assert first == again  # reproducible schedule under one seed
    assert first != other  # ... but distinct across the fleet
    bases = [0.5, 1.0, 2.0, 3.0]  # doubling, capped at max_delay
    assert len(first) == len(bases)
    for delay, base in zip(first, bases):
        assert base * 0.5 <= delay <= base
    # jitter actually moved the schedule off the bare doubling curve
    assert first != bases


def test_backoff_without_jitter_is_the_bare_doubling_curve():
    delays = _collect_backoff_delays(seed=1, jitter=0.0)
    assert delays == [0.5, 1.0, 2.0, 3.0]


# ----------------------------------------------------------------------
# CLI


def _free_port() -> int:
    with contextlib.closing(socket.socket()) as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def test_cli_distributed_learn_matches_local(tmp_path):
    local_path = tmp_path / "local.json"
    dist_path = tmp_path / "dist.json"
    assert main(["learn", "--files", "8", "--jobs", "2",
                 "--out", str(local_path)]) == 0

    port = _free_port()
    outcome = {}
    coordinator_thread = threading.Thread(target=lambda: outcome.update(
        code=main(["coordinator", "--files", "8", "--jobs", "2",
                   "--bind", f"127.0.0.1:{port}", "--min-workers", "2",
                   "--parallel-train", "--out", str(dist_path)])
    ), daemon=True)
    workers = [
        threading.Thread(target=main, args=([
            "worker", "--connect", f"127.0.0.1:{port}", "--quiet",
            "--name", f"cli-w{i}", "--connect-retries", "60",
        ],), daemon=True)
        for i in range(2)
    ]
    coordinator_thread.start()
    for worker in workers:
        worker.start()
    coordinator_thread.join(timeout=300)
    assert not coordinator_thread.is_alive()
    assert outcome["code"] == 0
    for worker in workers:
        worker.join(timeout=30)
    assert dist_path.read_text() == local_path.read_text()
