"""Tests for event-graph export (DOT / networkx)."""

from repro.events import HistoryBuilder, build_event_graph
from repro.events.export import to_dot, to_networkx
from repro.pointsto import analyze
from repro.specs.matching import find_matches, induced_edges


def _graph(program):
    res = analyze(program)
    return build_event_graph(HistoryBuilder(program, res).build())


def test_dot_contains_all_events_and_edges(fig2_program):
    g = _graph(fig2_program)
    dot = to_dot(g)
    assert dot.startswith("digraph")
    assert dot.rstrip().endswith("}")
    assert dot.count("->") == g.edge_count
    # short method labels present
    assert "put" in dot and "get" in dot and "getName" in dot
    # call sites with several events become clusters (Fig. 3 regions)
    assert "subgraph cluster_" in dot


def test_dot_induced_edges_dashed(fig2_program):
    g = _graph(fig2_program)
    matches = [
        m for pair in g.receiver_pairs() for m in find_matches(g, pair)
    ]
    induced = set()
    for m in matches:
        induced |= induced_edges(m, g)
    dot = to_dot(g, induced=induced)
    assert "style=dashed" in dot
    assert dot.count("->") == g.edge_count + len(induced)


def test_dot_deterministic(fig2_program):
    g1 = _graph(fig2_program)
    assert to_dot(g1) == to_dot(g1)


def test_networkx_roundtrip(fig2_program):
    g = _graph(fig2_program)
    nx_graph = to_networkx(g)
    assert nx_graph.number_of_nodes() == len(g.events)
    assert nx_graph.number_of_edges() == g.edge_count
    # node attributes preserved
    node = next(iter(nx_graph.nodes))
    assert "label" in nx_graph.nodes[node]
    assert "method" in nx_graph.nodes[node]
