"""The sharded parallel mining engine: determinism across worker
counts, the incremental analysis cache, mergeable partials, and
checkpoint-resume under sharding."""

import json
import os
import pickle

import pytest

from repro.cli import main
from repro.corpus import (
    CorpusConfig,
    CorpusGenerator,
    java_registry,
    mine_directory,
    save_corpus,
)
from repro.ir import ProgramBuilder
from repro.mining import (
    MiningConfig,
    MiningEngine,
    ShardPartial,
    ShardPlan,
    shard_of,
)
from repro.mining.cache import AnalysisCache
from repro.mining.partial import ShardMetrics
from repro.model.logistic import SufficientStats
from repro.runtime import (
    Budget,
    BudgetExceeded,
    FaultPlan,
    FaultSpec,
    QuarantineEntry,
    RuntimeConfig,
    SOLVER_CRASH,
)
from repro.runtime.executor import ProgramOutcome
from repro.specs.pipeline import PipelineConfig
from repro.specs.serialize import specs_to_json


def java_corpus(n=10, seed=7):
    return CorpusGenerator(
        java_registry(), CorpusConfig(n_files=n, seed=seed)).programs()


def pathological_program(chain=3000, name="pathological.java"):
    pb = ProgramBuilder(source=name)
    fb = pb.function("main")
    v = fb.alloc("Api")
    for _ in range(chain):
        w = fb.fresh()
        fb.assign(w, v)
        v = w
    fb.call("Api.use", receiver=v, returns=False)
    pb.add(fb.finish())
    return pb.finish()


def learn(programs, *, jobs=1, shards=None, cache_dir=None, runtime=None):
    config = PipelineConfig(runtime=runtime or RuntimeConfig())
    mining = MiningConfig(
        jobs=jobs, shards=shards,
        cache_dir=str(cache_dir) if cache_dir else None,
    )
    return MiningEngine(config, mining).learn(programs)


# ----------------------------------------------------------------------
# sharding


def test_shard_of_is_deterministic_and_in_range():
    for n in (1, 2, 7, 64):
        for name in ("a.java", "b.py", "dir/c.java", ""):
            first = shard_of(name, n)
            assert first == shard_of(name, n)  # pure function of inputs
            assert 0 <= first < n
    # different shard counts re-hash rather than truncate
    assert shard_of("a.java", 1) == 0
    with pytest.raises(ValueError):
        shard_of("a.java", 0)


def test_shard_plan_partitions_corpus_in_order():
    identities = [f"corpus_{i:05d}.java" for i in range(40)]
    plan = ShardPlan.of(identities, 5)
    seen = []
    for shard_id in range(5):
        members = plan.members(shard_id)
        assert members == sorted(members)  # corpus order preserved
        seen.extend(members)
    assert sorted(seen) == list(range(40))  # exact partition
    # assignment ignores list order: identity → shard is stable
    assert plan.assignments[3] == ShardPlan.of(identities[::-1], 5) \
        .assignments[len(identities) - 1 - 3]


def test_mine_directory_shards_partition_the_tree(tmp_path):
    files = CorpusGenerator(
        java_registry(), CorpusConfig(n_files=12, seed=7)).generate()
    save_corpus(files, tmp_path)
    sigs = java_registry().signatures()
    full = {p.source for p in mine_directory(tmp_path, sigs).programs}
    assert len(full) == 12
    shards = [
        {p.source for p in
         mine_directory(tmp_path, sigs, n_shards=3, shard_index=i).programs}
        for i in range(3)
    ]
    assert set().union(*shards) == full
    assert sum(len(s) for s in shards) == len(full)  # disjoint
    with pytest.raises(ValueError):
        mine_directory(tmp_path, sigs, n_shards=3, shard_index=3)


# ----------------------------------------------------------------------
# mergeable partials


def make_partial(shard_id, key, n_samples=0):
    partial = ShardPartial.empty(shard_id)
    partial.outcomes.append(ProgramOutcome(key=key, source=key, tier="t"))
    partial.bundle_refs.append((key, None))
    partial.analyzed_keys.append(key)
    partial.stats.add(key, [])
    return partial


def canonical_view(partial):
    partial.canonicalize()
    return (
        [m.shard_id for m in partial.metrics],
        [o.key for o in partial.outcomes],
        [e.program for e in partial.manifest.entries],
        partial.bundle_refs,
        partial.analyzed_keys,
        sorted(partial.stats.blocks),
    )


def test_shard_partial_merge_is_associative_and_order_insensitive():
    def fresh():
        return [make_partial(0, "000001:a"), make_partial(1, "000000:b"),
                make_partial(2, "000002:c")]

    a, b, c = fresh()
    left = a.merge(b).merge(c)
    a2, b2, c2 = fresh()
    right = a2.merge(b2.merge(c2))
    assert canonical_view(left) == canonical_view(right)

    a3, b3, c3 = fresh()
    reordered = c3.merge(a3).merge(b3)
    assert canonical_view(reordered) == canonical_view(left)


def test_shard_partial_empty_is_identity():
    partial = make_partial(0, "000000:a")
    merged = ShardPartial().merge(partial).merge(ShardPartial())
    assert canonical_view(merged) == canonical_view(make_partial(0, "000000:a"))


def test_sufficient_stats_stream_is_merge_order_independent():
    from repro.model.features import EncodedSample

    def sample(tag):
        return EncodedSample(("ret", "ret"), (hash(tag) % 100,), 1)

    a = SufficientStats()
    a.add("000000:x", [sample("x")])
    b = SufficientStats()
    b.add("000001:y", [sample("y"), sample("z")])
    ab = SufficientStats().merge(a).merge(b)
    ba = SufficientStats().merge(b).merge(a)
    assert ab.stream(seed=13) == ba.stream(seed=13)
    assert ab.n_samples == 3


# ----------------------------------------------------------------------
# cross-process pickling


def test_budget_exceeded_pickles_across_process_boundary():
    err = BudgetExceeded("solver_iterations", 100, 50, stage="pointsto")
    restored = pickle.loads(pickle.dumps(err))
    assert isinstance(restored, BudgetExceeded)
    assert restored.resource == "solver_iterations"
    assert (restored.used, restored.limit) == (100, 50)
    assert restored.stage == "pointsto"
    assert str(restored) == str(err)


def test_model_pickle_is_sparse_and_prediction_preserving():
    from repro.model.features import extract_feature

    programs = java_corpus(6)
    learned = learn(programs)
    payload = pickle.dumps(learned.model)
    # a dense pickle of 2^18-dim float64 weight+grad arrays would be
    # megabytes per member; sparse state must stay far below that
    assert len(payload) < 2_000_000
    restored = pickle.loads(payload)
    graph = learned.run.bundles[0].graph
    events = sorted(graph.events, key=repr)[:6]
    guard = learned.run.bundles[0].guard_index
    for e1 in events:
        for e2 in events:
            if e1 is e2:
                continue
            feature = extract_feature(graph, e1, e2, guard)
            assert restored.predict(feature) == \
                pytest.approx(learned.model.predict(feature), abs=1e-12)


# ----------------------------------------------------------------------
# determinism: worker count must never change the result


def test_parallel_mining_is_byte_identical_to_sequential():
    runtime = RuntimeConfig(budget=Budget(max_solver_iterations=500))
    programs = java_corpus(12) + [pathological_program()]

    seq = learn(programs, jobs=1, runtime=runtime)
    par = learn(programs, jobs=2, runtime=runtime)

    assert len(seq.specs) > 0
    assert specs_to_json(seq.specs, seq.scores) == \
        specs_to_json(par.specs, par.scores)
    assert seq.run.manifest.to_json(timings=False) == \
        par.run.manifest.to_json(timings=False)
    assert seq.run.n_quarantined == par.run.n_quarantined == 1
    assert par.mining.jobs == 2 and par.mining.n_shards > 1


def test_shard_count_does_not_change_the_result():
    programs = java_corpus(10)
    one = learn(programs, jobs=1, shards=1)
    many = learn(programs, jobs=1, shards=7)
    assert specs_to_json(one.specs, one.scores) == \
        specs_to_json(many.specs, many.scores)


# ----------------------------------------------------------------------
# incremental analysis cache


def test_warm_cache_reanalyzes_nothing(tmp_path):
    programs = java_corpus(8)
    cold = learn(programs, cache_dir=tmp_path / "cache")
    assert cold.mining.n_analyzed == 8 and cold.mining.n_cached == 0

    warm = learn(programs, cache_dir=tmp_path / "cache")
    assert warm.mining.n_analyzed == 0
    assert warm.mining.n_cached == 8
    assert warm.mining.cache_hit_rate == 1.0
    assert specs_to_json(warm.specs, warm.scores) == \
        specs_to_json(cold.specs, cold.scores)


def test_editing_k_files_reanalyzes_exactly_k(tmp_path):
    programs = java_corpus(10)
    learn(programs, cache_dir=tmp_path / "cache")

    edited = list(programs)
    replacements = CorpusGenerator(
        java_registry(), CorpusConfig(n_files=10, seed=99)).programs()
    for i in (2, 7):  # "edit" two files: same path, new content
        replacements[i].source = programs[i].source
        edited[i] = replacements[i]

    rerun = learn(edited, cache_dir=tmp_path / "cache", jobs=2)
    assert rerun.mining.n_analyzed == 2
    assert rerun.mining.n_cached == 8


def test_cache_ignores_parallelism_but_respects_analysis_config(tmp_path):
    programs = java_corpus(6)
    learn(programs, cache_dir=tmp_path / "cache", jobs=2)
    # same analysis config, different parallelism: all hits
    warm = learn(programs, cache_dir=tmp_path / "cache", jobs=1, shards=3)
    assert warm.mining.n_cached == 6
    # changed analysis budget: full invalidation
    runtime = RuntimeConfig(budget=Budget(max_solver_iterations=10_000))
    cold = learn(programs, cache_dir=tmp_path / "cache", runtime=runtime)
    assert cold.mining.n_cached == 0 and cold.mining.n_analyzed == 6


def test_cached_quarantine_verdicts_are_reused(tmp_path):
    runtime = RuntimeConfig(budget=Budget(max_solver_iterations=500))
    programs = java_corpus(5) + [pathological_program()]
    cold = learn(programs, cache_dir=tmp_path / "cache", runtime=runtime)
    assert cold.run.n_quarantined == 1

    warm = learn(programs, cache_dir=tmp_path / "cache", runtime=runtime)
    assert warm.mining.n_analyzed == 0  # the blow-up was not re-attempted
    assert warm.run.n_quarantined == 1
    assert warm.run.manifest.to_json(timings=False) == \
        cold.run.manifest.to_json(timings=False)


# ----------------------------------------------------------------------
# kill/resume × sharding


def test_killed_parallel_run_resumes_without_double_analysis(tmp_path):
    """A worker-side injected fault aborts a strict parallel run; the
    re-run completes from the cache with no program analysed twice."""
    programs = java_corpus(10)
    victim = programs[-1].source
    faulty = RuntimeConfig(
        strict=True,
        faults=FaultPlan([FaultSpec(program=victim, error=SOLVER_CRASH)]),
    )
    with pytest.raises(Exception, match="injected fault"):
        learn(programs, jobs=2, shards=4, cache_dir=tmp_path / "cache",
              runtime=faulty)

    from repro.mining.cache import AnalysisCache, pipeline_fingerprint
    fingerprint = pipeline_fingerprint(PipelineConfig())
    survived = len(AnalysisCache(tmp_path / "cache", fingerprint))
    assert 0 < survived < 10  # partial progress persisted, kill was real

    rerun = learn(programs, jobs=2, shards=4, cache_dir=tmp_path / "cache")
    report = rerun.mining
    assert report.n_cached == survived
    assert report.n_analyzed == 10 - survived  # only the missing ones
    cached_keys = {o.key for o in rerun.run.outcomes if o.cached}
    assert cached_keys.isdisjoint(report.analyzed_keys)
    assert len(cached_keys) + len(report.analyzed_keys) == 10
    # the merged run report is complete: every program accounted for
    assert rerun.run.n_ok == 10 and rerun.run.n_quarantined == 0


def test_checkpoint_resume_under_sharding(tmp_path):
    """--checkpoint-dir composes with sharding: per-shard checkpoint
    subdirectories let a killed run resume with the same shard count."""
    programs = java_corpus(8)
    ckpt = tmp_path / "ckpt"
    victim = programs[-1].source
    faulty = RuntimeConfig(
        strict=True, checkpoint_dir=str(ckpt),
        faults=FaultPlan([FaultSpec(program=victim, error=SOLVER_CRASH)]),
    )
    with pytest.raises(Exception, match="injected fault"):
        learn(programs, jobs=2, shards=3, runtime=faulty)

    checkpointed = set()
    for index_file in ckpt.glob("shard-*/index.json"):
        checkpointed |= set(json.loads(index_file.read_text())["entries"])
    assert 0 < len(checkpointed) < 8

    clean = RuntimeConfig(checkpoint_dir=str(ckpt))
    rerun = learn(programs, jobs=2, shards=3, runtime=clean)
    report = rerun.mining
    assert report.n_resumed == len(checkpointed)
    assert checkpointed.isdisjoint(report.analyzed_keys)
    assert report.n_resumed + report.n_analyzed == 8
    assert rerun.run.n_ok == 8


# ----------------------------------------------------------------------
# CLI


def test_cli_jobs_byte_identical_outputs(tmp_path):
    def run(jobs, tag):
        specs = tmp_path / f"specs-{tag}.json"
        manifest = tmp_path / f"quarantine-{tag}.json"
        code = main([
            "learn", "--files", "10", "--seed", "7",
            "--budget-iterations", "5000",
            "--jobs", str(jobs),
            "--out", str(specs), "--quarantine-out", str(manifest),
        ])
        assert code == 0
        return specs.read_bytes(), manifest.read_bytes()

    specs1, manifest1 = run(1, "j1")
    specs4, manifest4 = run(4, "j4")
    assert specs1 == specs4
    assert manifest1 == manifest4
    assert len(json.loads(specs1)["specs"]) > 0


def test_cli_parallel_strict_budget_exits_3(capsys):
    code = main(["learn", "--files", "4", "--seed", "7", "--jobs", "2",
                 "--budget-iterations", "1", "--strict"])
    assert code == 3
    assert "budget exceeded" in capsys.readouterr().err


def test_cli_parallel_everything_quarantined_exits_4(capsys):
    code = main(["learn", "--files", "4", "--seed", "7", "--jobs", "2",
                 "--budget-iterations", "1"])
    assert code == 4
    assert "every corpus program was quarantined" in capsys.readouterr().err


def test_cli_cache_dir_warm_run_reports_hits(tmp_path, capsys):
    args = ["learn", "--files", "5", "--seed", "7",
            "--cache-dir", str(tmp_path / "cache"),
            "--out", str(tmp_path / "specs.json")]
    assert main(args) == 0
    capsys.readouterr()
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "cache hits 5 (100%)" in out


def test_cli_jobs_prints_mining_metrics(tmp_path, capsys):
    code = main(["learn", "--files", "6", "--seed", "7", "--jobs", "2",
                 "--out", str(tmp_path / "specs.json")])
    assert code == 0
    out = capsys.readouterr().out
    assert "programs/s" in out
    assert "shard wall-clock" in out


# ----------------------------------------------------------------------
# read-only cache directories (prewarmed snapshots mounted into workers)


def _cache_with_entry(tmp_path):
    cache = AnalysisCache(tmp_path, fingerprint="fp")
    cache.store_quarantine("prog0", QuarantineEntry(
        program="p0", source="p0.java",
        error_kind=SOLVER_CRASH, error="boom"))
    return cache


def test_readonly_cache_still_serves_hits_and_latches(tmp_path, monkeypatch):
    cache = _cache_with_entry(tmp_path)
    attempts = []

    def denied(path, *args, **kwargs):
        attempts.append(path)
        raise PermissionError("read-only cache")

    monkeypatch.setattr(os, "utime", denied)
    hit = cache.lookup("prog0", "000000:p0.java")
    assert hit is not None
    assert hit.entry.program == "000000:p0.java"  # re-keyed to corpus
    assert cache._touchable is False
    # latched off: later hits never re-attempt the denied touch
    assert cache.lookup("prog0", "000000:p0.java") is not None
    assert len(attempts) == 1


def test_raced_eviction_touch_is_not_sticky(tmp_path, monkeypatch):
    cache = _cache_with_entry(tmp_path)
    monkeypatch.setattr(
        os, "utime",
        lambda *a, **k: (_ for _ in ()).throw(FileNotFoundError()))
    assert cache.lookup("prog0", "k") is not None
    assert cache._touchable is True  # a vanished file is per-call only
