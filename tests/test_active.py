"""The active-learning loop: uncertainty extraction, directed
synthesis of discriminating programs, and the crash-consistent
refinement engine behind ``uspec refine``."""

import json

import pytest

from repro.active import (
    AmbiguousCandidate,
    DirectedSynthesizer,
    Metrics,
    RefineConfig,
    RefinementEngine,
    find_ambiguous,
)
from repro.active.refine import RefineStateError
from repro.active.synthesis import spec_slug
from repro.corpus import (
    CorpusConfig,
    CorpusGenerator,
    derive_rng,
    java_registry,
    python_registry,
)
from repro.corpus.generator import _JavaGen, _PythonGen
from repro.mining import MiningConfig
from repro.specs.candidates import CandidateExtraction, CandidateStats
from repro.specs.patterns import RetArg, RetSame, SpecSet
from repro.specs.pipeline import PipelineConfig
from repro.store.faults import CrashPlan, SimulatedCrash, install_crash_plan

#: the toy corpus every refinement test runs on (matches CI's
#: refine-smoke job); seed 7 / 40 files puts 4 candidates in the band
TOY = dict(n_files=40, seed=7)


@pytest.fixture(autouse=True)
def disarm_crash_plans():
    yield
    install_crash_plan(None)


@pytest.fixture(scope="module")
def toy_base():
    registry = java_registry()
    generator = CorpusGenerator(registry, CorpusConfig(**TOY))
    return registry, generator.generate()


def make_engine(registry, store_dir, **overrides):
    refine = RefineConfig(**{
        "max_generations": 2, "seed": TOY["seed"], **overrides,
    })
    return RefinementEngine(
        registry, PipelineConfig(),
        MiningConfig(store_dir=str(store_dir)), refine,
    )


# ----------------------------------------------------------------------
# uncertainty extraction


def extraction_of(stats):
    extraction = CandidateExtraction()
    for spec, confidences in stats.items():
        entry = CandidateStats()
        for c in confidences:
            entry.add(c, "f.java")
        extraction.stats[spec] = entry
    return extraction


def test_find_ambiguous_flags_band_and_disagreement():
    near = RetSame("A.load")          # in the band
    sure = RetSame("B.load")          # high score, plenty of matches
    thin = RetSame("C.load")          # high score on a single match
    scores = {near: 0.55, sure: 0.97, thin: 0.99}
    extraction = extraction_of({
        near: [0.55] * 3, sure: [0.97] * 12, thin: [0.99],
    })
    found = find_ambiguous(scores, extraction, tau=0.6, band=0.15)
    by_spec = {c.spec: c for c in found}
    assert near in by_spec and by_spec[near].reason == "band"
    assert thin in by_spec and by_spec[thin].reason == "disagreement"
    assert sure not in by_spec
    # band candidates outrank disagreement-only ones
    assert found[0].spec == near
    assert found[0].uncertainty > 0


def test_find_ambiguous_is_deterministic_and_limited():
    specs = {RetSame(f"C{i}.get"): 0.6 for i in range(6)}
    extraction = extraction_of({s: [0.6] * 2 for s in specs})
    first = find_ambiguous(specs, extraction, tau=0.6, band=0.1)
    again = find_ambiguous(dict(reversed(list(specs.items()))),
                           extraction, tau=0.6, band=0.1)
    assert [str(c.spec) for c in first] == [str(c.spec) for c in again]
    assert len(find_ambiguous(specs, extraction, tau=0.6, band=0.1,
                              limit=2)) == 2
    with pytest.raises(ValueError):
        find_ambiguous(specs, extraction, tau=0.6, band=0.0)


# ----------------------------------------------------------------------
# seed threading in the generator


def test_derive_rng_streams_are_independent_and_stable():
    a1 = [derive_rng(7, "a").random() for _ in range(3)]
    # draining another stream in between must not perturb stream "a"
    derive_rng(7, "b").random()
    a2 = [derive_rng(7, "a").random() for _ in range(3)]
    assert a1 == a2
    assert derive_rng(7, "a").random() != derive_rng(7, "b").random()
    assert derive_rng(7, "a").random() != derive_rng(8, "a").random()


def test_generate_one_is_order_independent():
    generator = CorpusGenerator(java_registry(), CorpusConfig(**TOY))
    in_order = [generator.generate_one(i) for i in range(4)]
    reversed_order = [generator.generate_one(i) for i in (3, 2, 1, 0)]
    assert [f.text for f in in_order] \
        == [f.text for f in reversed(reversed_order)]
    # a fresh generator produces identical bytes for the same index
    again = CorpusGenerator(java_registry(), CorpusConfig(**TOY))
    assert again.generate_one(2).text == in_order[2].text


def test_load_repeat_emits_store_then_two_loads():
    registry = java_registry()
    cls = next(c for c in registry.classes
               if c.fqn == "java.util.HashMap")
    gen = _JavaGen(registry, CorpusConfig(seed=3), derive_rng(3, "t"))
    gen.load_repeat(cls, same_key=True)
    text = gen.writer.text()
    assert text.count(".get(") == 2 and ".put(" in text

    pyreg = python_registry()
    pycls = next(c for c in pyreg.classes if c.fqn == "Dict")
    pygen = _PythonGen(pyreg, CorpusConfig(seed=3), derive_rng(3, "t"))
    pygen.load_repeat(pycls, same_key=False)
    pytext = pygen.writer.text()
    # subscript container: one store plus two loads
    assert pytext.count("[") >= 3


# ----------------------------------------------------------------------
# directed synthesis


def sans_store_counters(record):
    """A generation record minus the store's monotone generation
    counters — a crashed attempt consumes store generations, so those
    are the one field resume cannot (and need not) replay exactly."""
    data = {k: v for k, v in record.to_dict().items()
            if k != "store_generation"}
    if data.get("drift"):
        data["drift"] = {k: v for k, v in data["drift"].items()
                         if k not in ("generation", "previous")}
    return data


def candidate_for(spec, score=0.55):
    return AmbiguousCandidate(
        spec=spec, score=score, matches=2, n_confidences=2,
        distance=abs(score - 0.6), disagreement=0.0,
        uncertainty=0.9, reason="band",
    )


def test_synthesizer_emits_validated_pairs_deterministically():
    registry = java_registry()
    synth = DirectedSynthesizer(registry, seed=7)
    spec = RetArg("java.util.HashMap.get", "java.util.HashMap.put", 2)
    result = synth.synthesize(candidate_for(spec), generation=1, rounds=2)
    assert len(result.programs) == 4 and not result.skipped
    names = [p.name for p in result.programs]
    slug = spec_slug(spec)
    assert all(slug in name for name in names)
    assert sum("_alias" in n for n in names) == 2
    assert sum("_non" in n for n in names) == 2
    for program in result.programs:
        assert ".get(" in program.text and ".put(" in program.text
    # byte-identical on re-synthesis
    again = synth.synthesize(candidate_for(spec), generation=1, rounds=2)
    assert [p.text for p in again.programs] \
        == [p.text for p in result.programs]
    # a different generation draws a different stream
    other = synth.synthesize(candidate_for(spec), generation=2, rounds=2)
    assert [p.text for p in other.programs] \
        != [p.text for p in result.programs]


def test_synthesizer_handles_python_and_unknown_classes():
    registry = python_registry()
    synth = DirectedSynthesizer(registry, seed=7)
    true_retarg = next(
        s for s in registry.all_true_specs()
        if isinstance(s, RetArg) and s.target.startswith("Dict.")
    )
    result = synth.synthesize(candidate_for(true_retarg), generation=1,
                              rounds=1)
    assert len(result.programs) == 2
    assert all(p.language == "python" for p in result.programs)

    missing = synth.synthesize(
        candidate_for(RetSame("com.example.Nope.get")), generation=1
    )
    assert not missing.programs
    assert missing.skipped and "no registry class" in missing.skipped[0][1]


# ----------------------------------------------------------------------
# the refinement engine


def test_refinement_requires_a_store():
    with pytest.raises(ValueError):
        RefinementEngine(java_registry(), PipelineConfig(),
                         MiningConfig(), RefineConfig())


def test_refinement_resolves_band_candidates_on_toy_corpus(
        tmp_path, toy_base):
    registry, base = toy_base
    report = make_engine(registry, tmp_path / "store").run(base)
    # the acceptance contract: ≥1 ambiguous candidate resolved within
    # 2 generations, precision/recall no worse than the unrefined run
    assert report.n_resolved >= 1
    assert len(report.generations) <= 2
    lift = report.lift()
    assert lift["precision"] >= 0 and lift["recall"] >= 0
    assert report.stop_reason in (
        "band-empty", "budget-exhausted", "no-lift"
    )
    assert report.n_synthesized > 0
    # resolutions carry direction + ground-truth verdict
    resolutions = [r for g in report.generations for r in g.resolved]
    assert all(r.direction in ("promoted", "demoted") for r in resolutions)
    assert any(r.correct for r in resolutions)


def test_refinement_report_is_byte_identical_across_runs(
        tmp_path, toy_base):
    registry, base = toy_base
    first = make_engine(registry, tmp_path / "a").run(base)
    second = make_engine(registry, tmp_path / "b").run(base)
    assert first.to_json() == second.to_json()
    # and the canonical report carries no wall-clock
    assert "seconds" not in first.to_json()
    assert first.seconds_per_generation  # timings live off to the side


def test_refinement_resume_does_not_resynthesize(
        tmp_path, toy_base, monkeypatch):
    registry, base = toy_base
    store = tmp_path / "store"
    first = make_engine(registry, store).run(base)
    assert first.resumed_generations == []

    # a second run over the same store must load every completed
    # generation; synthesizing anything would be a bug
    def forbidden(self, *args, **kwargs):
        raise AssertionError("resume must not re-synthesize")

    monkeypatch.setattr(DirectedSynthesizer, "synthesize", forbidden)
    resumed = make_engine(registry, store).run(base)
    assert resumed.resumed_generations \
        == [0] + [g.generation for g in first.generations]
    assert [g.to_dict() for g in resumed.generations] \
        == [g.to_dict() for g in first.generations]


def test_refinement_crash_between_generations_resumes(
        tmp_path, toy_base, monkeypatch):
    registry, base = toy_base
    store = tmp_path / "store"
    clean = make_engine(registry, tmp_path / "clean").run(base)

    # die right after generation 1's state became durable — the
    # "SIGKILL between generations" point
    install_crash_plan(CrashPlan.parse("post-rename:gen-0001.json"))
    with pytest.raises(SimulatedCrash):
        make_engine(registry, store).run(base)
    install_crash_plan(None)

    def forbidden(self, *args, **kwargs):
        raise AssertionError("resume must not re-synthesize gen 1")

    monkeypatch.setattr(DirectedSynthesizer, "synthesize", forbidden)
    resumed = make_engine(registry, store).run(base)
    assert 1 in resumed.resumed_generations
    # the outcome matches the uninterrupted run exactly
    assert [g.to_dict() for g in resumed.generations] \
        == [g.to_dict() for g in clean.generations]
    assert resumed.stop_reason == clean.stop_reason


def test_refinement_crash_before_state_write_recomputes(
        tmp_path, toy_base):
    registry, base = toy_base
    store = tmp_path / "store"
    clean = make_engine(registry, tmp_path / "clean").run(base)

    # die before the rename: generation 1's state is lost, so the
    # rerun re-synthesizes it — deterministically, to the same bytes
    install_crash_plan(CrashPlan.parse("pre-rename:gen-0001.json"))
    with pytest.raises(SimulatedCrash):
        make_engine(registry, store).run(base)
    install_crash_plan(None)

    rerun = make_engine(registry, store).run(base)
    assert rerun.resumed_generations == [0]
    # identical outcome; only the store's monotone generation counters
    # remember that a crashed attempt happened
    assert [sans_store_counters(g) for g in rerun.generations] \
        == [sans_store_counters(g) for g in clean.generations]


def test_refinement_state_digest_rejects_other_config(
        tmp_path, toy_base):
    registry, base = toy_base
    store = tmp_path / "store"
    make_engine(registry, store).run(base)
    with pytest.raises(RefineStateError):
        make_engine(registry, store, band=0.2).run(base)


# ----------------------------------------------------------------------
# metrics and report shape


def test_metrics_against_ground_truth():
    registry = java_registry()
    truth = sorted(registry.all_true_specs(), key=str)[:4]
    selected = SpecSet(truth[:2] + [RetSame("com.example.Fake.get")])
    metrics = Metrics.of(selected, registry)
    assert metrics.n_selected == 3 and metrics.n_true_selected == 2
    assert metrics.precision == pytest.approx(2 / 3)
    assert metrics.recall == pytest.approx(
        2 / len(registry.all_true_specs()))
    assert 0 < metrics.f1 < 1
    assert Metrics.from_dict(metrics.to_dict()).f1 \
        == pytest.approx(metrics.f1, abs=1e-6)


def test_report_json_is_machine_readable(tmp_path, toy_base):
    registry, base = toy_base
    report = make_engine(registry, tmp_path / "store").run(base)
    data = json.loads(report.to_json())
    assert data["format"] == "uspec-refinement"
    assert data["totals"]["n_resolved"] == report.n_resolved
    assert data["totals"]["lift"] == report.lift()
    for record in data["generations"]:
        assert {"generation", "targeted", "programs", "resolved",
                "metrics", "band_after"} <= set(record)


# ----------------------------------------------------------------------
# the CLI surface: `uspec refine` and `uspec learn --drift-out`


def test_cli_refine_writes_report(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "report.json"
    code = main([
        "refine", "--language", "java", "--files", "40", "--seed", "7",
        "--store-dir", str(tmp_path / "store"),
        "--max-generations", "2", "--out", str(out),
    ])
    assert code == 0
    data = json.loads(out.read_text())
    assert data["format"] == "uspec-refinement"
    assert data["totals"]["n_resolved"] >= 1
    assert "resolved" in capsys.readouterr().out


def test_cli_learn_drift_out(tmp_path):
    from repro.cli import main

    drift = tmp_path / "drift.json"
    args = ["learn", "--files", "6", "--seed", "7",
            "--store-dir", str(tmp_path / "store"),
            "--out", str(tmp_path / "specs.json"),
            "--drift-out", str(drift)]
    assert main(args) == 0
    first = json.loads(drift.read_text())
    assert first["format"] == "uspec-drift"
    assert first["store_generation"] == 1
    assert first["drift"]["n_unchanged"] == 0  # nothing to differ from

    # an identical append run drifts nothing
    assert main(args + ["--append"]) == 0
    second = json.loads(drift.read_text())
    assert second["store_generation"] == 2
    assert second["drift"]["gained"] == [] and second["drift"]["lost"] == []
    assert second["drift"]["n_unchanged"] > 0


def test_cli_drift_out_requires_store(tmp_path, capsys):
    from repro.cli import main

    code = main(["learn", "--files", "4",
                 "--drift-out", str(tmp_path / "drift.json")])
    assert code == 2
    assert "--store-dir" in capsys.readouterr().err
