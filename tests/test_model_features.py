"""Tests for event-pair feature extraction and encoding (paper §4.1)."""

from repro.events import RET, HistoryBuilder, build_event_graph
from repro.ir import ProgramBuilder, Var
from repro.model.features import (
    FeatureConfig,
    GuardIndex,
    PairFeature,
    encode_feature,
    extract_feature,
)
from repro.pointsto import analyze


def _graph(program):
    res = analyze(program)
    return build_event_graph(HistoryBuilder(program, res).build())


def _event(graph, method, pos):
    (e,) = [e for e in graph.events
            if e.site.method_id == method and e.pos == pos]
    return e


def _chain_program():
    pb = ProgramBuilder()
    b = pb.function("main")
    db = b.alloc("Database")
    f = b.call("Database.getFile", receiver=db)
    b.call("File.getName", receiver=f, returns=False)
    pb.add(b.finish())
    return pb.finish()


def test_feature_contains_both_contexts():
    g = _graph(_chain_program())
    e1 = _event(g, "Database.getFile", RET)
    e2 = _event(g, "File.getName", 0)
    ftr = extract_feature(g, e1, e2)
    assert ftr.x1 == RET and ftr.x2 == 0
    assert any("getFile" in t for t in ftr.c1)
    assert any("getName" in t for t in ftr.c2)


def test_hide_pair_removes_revealing_paths():
    """§4.2: positive samples must not leak the edge through contexts."""
    g = _graph(_chain_program())
    e1 = _event(g, "Database.getFile", RET)
    e2 = _event(g, "File.getName", 0)
    full = extract_feature(g, e1, e2, hide_pair=False)
    hidden = extract_feature(g, e1, e2, hide_pair=True)
    assert any("getName" in t for t in full.c1)
    assert not any("getName" in t for t in hidden.c1)
    assert not any("getFile" in t for t in hidden.c2)


def test_position_key_normalises_large_positions():
    f1 = PairFeature(RET, 7, frozenset(), frozenset(), frozenset())
    f2 = PairFeature(RET, 9, frozenset(), frozenset(), frozenset())
    assert f1.position_key == f2.position_key == ("ret", "arg5+")
    f3 = PairFeature(0, 2, frozenset(), frozenset(), frozenset())
    assert f3.position_key == ("0", "2")


def test_name_tokens_bridge_qualified_ids():
    g = _graph(_chain_program())
    e1 = _event(g, "Database.getFile", RET)
    e2 = _event(g, "File.getName", 0)
    with_names = extract_feature(g, e1, e2,
                                 config=FeatureConfig(name_tokens=True))
    assert any(t.startswith("getFile") or "~" in t or t.startswith("getName")
               for t in with_names.c1 | with_names.c2)
    without = extract_feature(g, e1, e2,
                              config=FeatureConfig(name_tokens=False))
    assert len(without.c1) <= len(with_names.c1)


def test_encoding_is_deterministic_and_bounded():
    g = _graph(_chain_program())
    e1 = _event(g, "Database.getFile", RET)
    e2 = _event(g, "File.getName", 0)
    ftr = extract_feature(g, e1, e2)
    cfg = FeatureConfig(dim=1 << 10)
    enc1 = encode_feature(ftr, cfg)
    enc2 = encode_feature(ftr, cfg)
    assert enc1 == enc2
    assert all(0 <= i < cfg.dim for i in enc1)
    assert enc1 == tuple(sorted(enc1))


def test_pair_features_add_conjunctions():
    g = _graph(_chain_program())
    e1 = _event(g, "Database.getFile", RET)
    e2 = _event(g, "File.getName", 0)
    ftr = extract_feature(g, e1, e2)
    with_pairs = encode_feature(ftr, FeatureConfig(pair_features=True))
    without = encode_feature(ftr, FeatureConfig(pair_features=False))
    assert len(with_pairs) > len(without)


def test_gamma_includes_arg_types_and_guards():
    pb = ProgramBuilder()
    b = pb.function("main")
    m = b.alloc("Map")
    k = b.const("key")
    cond = b.const(True)
    b.call("Map.put", receiver=m, args=[k, k],
           arg_types=("String", "File"), returns=False)
    with b.if_(cond):
        b.call("Map.get", receiver=m, args=[k], arg_types=("String",))
    pb.add(b.finish())
    prog = pb.finish()
    g = _graph(prog)
    guard_index = GuardIndex(prog)
    put0 = _event(g, "Map.put", 0)
    get0 = _event(g, "Map.get", 0)
    ftr = extract_feature(g, put0, get0, guard_index)
    assert "type:a:1:File" in ftr.gamma
    assert "guard:first-encloses" in ftr.gamma


def test_guard_index_relations():
    pb = ProgramBuilder()
    b = pb.function("main")
    c = b.const(True)
    a1 = b.alloc("A")
    with b.if_(c) as node:
        a2 = b.alloc("B")
        a3 = b.alloc("C")
    with b.else_(node):
        a4 = b.alloc("D")
    pb.add(b.finish())
    prog = pb.finish()
    gi = GuardIndex(prog)
    instrs = {i.type_name: i for i in
              __import__("repro.ir.traversal", fromlist=["iter_instructions"])
              .iter_instructions(prog.functions["main"].body)
              if hasattr(i, "type_name")}
    assert gi.relation(instrs["B"], instrs["C"]) == "same-guard"
    assert gi.relation(instrs["A"], instrs["B"]) == "first-encloses"
    assert gi.relation(instrs["B"], instrs["A"]) == "second-encloses"
    assert gi.relation(instrs["B"], instrs["D"]) == "same-guard"
