"""Tests for training-data extraction (paper §4.2)."""

from repro.events import HistoryBuilder, build_event_graph
from repro.ir import ProgramBuilder
from repro.model.dataset import GraphBundle, collect_training_samples
from repro.model.model import EventPairModel
from repro.pointsto import analyze


def _bundle(program):
    res = analyze(program)
    graph = build_event_graph(HistoryBuilder(program, res).build())
    return GraphBundle.of(program, graph)


def _rich_program(n_chains=4):
    pb = ProgramBuilder(source="rich.java")
    b = pb.function("main")
    for _ in range(n_chains):
        db = b.alloc("Database")
        f = b.call("Database.getFile", receiver=db)
        b.call("File.getName", receiver=f, returns=False)
        b.call("File.getPath", receiver=f, returns=False)
    pb.add(b.finish())
    return pb.finish()


def test_positive_and_negative_balance():
    samples = collect_training_samples([_bundle(_rich_program())], seed=1)
    positives = [s for s in samples if s.label == 1]
    negatives = [s for s in samples if s.label == 0]
    assert positives and negatives
    assert abs(len(positives) - len(negatives)) <= max(3, len(positives) // 4)


def test_max_positives_cap():
    samples = collect_training_samples(
        [_bundle(_rich_program(10))], max_positives_per_graph=5, seed=1
    )
    assert sum(1 for s in samples if s.label == 1) == 5


def test_negative_ratio():
    samples = collect_training_samples(
        [_bundle(_rich_program())], negative_ratio=2.0, seed=1
    )
    positives = sum(1 for s in samples if s.label == 1)
    negatives = sum(1 for s in samples if s.label == 0)
    assert negatives >= positives * 1.5


def test_samples_are_deterministic():
    b = _bundle(_rich_program())
    s1 = collect_training_samples([b], seed=7)
    s2 = collect_training_samples([b], seed=7)
    assert [(s.feature, s.label) for s in s1] == [(s.feature, s.label) for s in s2]


def test_sources_recorded():
    samples = collect_training_samples([_bundle(_rich_program())], seed=1)
    assert all(s.source == "rich.java" for s in samples)


def test_event_pair_model_learns_edges():
    """ϕ trained on chains scores a real-edge-shaped pair high and a
    random non-edge pair low."""
    bundles = [_bundle(_rich_program(6)) for _ in range(4)]
    samples = collect_training_samples(bundles, seed=2)
    model = EventPairModel()
    model.fit(samples)
    positives = [s for s in samples if s.label == 1]
    negatives = [s for s in samples if s.label == 0]
    pos_mean = sum(model.predict(s.feature) for s in positives) / len(positives)
    neg_mean = sum(model.predict(s.feature) for s in negatives) / len(negatives)
    assert pos_mean > 0.7
    assert neg_mean < 0.35
    assert pos_mean > neg_mean + 0.4


def test_model_fallback_for_unseen_position_key():
    bundles = [_bundle(_rich_program(3))]
    samples = collect_training_samples(bundles, seed=2)
    model = EventPairModel()
    model.fit(samples)
    from repro.model.features import PairFeature

    unseen = PairFeature(4, 4, frozenset({"zzz"}), frozenset({"yyy"}),
                         frozenset())
    p = model.predict(unseen)
    assert 0.0 <= p <= 1.0


def test_empty_graph_yields_no_samples():
    pb = ProgramBuilder()
    pb.add(pb.function("main").finish())
    samples = collect_training_samples([_bundle(pb.finish())], seed=1)
    assert samples == []
