"""Tests for the evaluation harness: PR curves, Tab. 4 classifier, tables."""

import pytest

from repro.eval import (
    CATEGORY_COVERAGE_MODE,
    CATEGORY_PRECISE,
    CATEGORY_WRONG_SPEC,
    classify_program,
    format_table,
    precision_recall_curve,
    sample_candidates,
    spec_ordering_auc,
)
from repro.eval.coverage import CoverageReport, SiteDiff
from repro.ir import ProgramBuilder, Var
from repro.specs import RetArg, RetSame, SpecSet

GET = "java.util.HashMap.get"
PUT = "java.util.HashMap.put"
TRUE_SPECS = SpecSet([RetArg(GET, PUT, 2), RetSame(GET)])


def _scores():
    return {
        RetArg("A.get", "A.put", 2): 0.95,
        RetSame("A.get"): 0.85,
        RetArg("B.get", "B.put", 2): 0.65,
        RetSame("C.next"): 0.55,  # invalid
        RetArg("D.get", "D.put", 1): 0.10,  # invalid
    }


def _is_valid(spec):
    return "next" not in str(spec) and "1)" not in str(spec)


def test_precision_recall_sweep():
    points = precision_recall_curve(_scores(), _is_valid, taus=(0.0, 0.6, 0.9))
    at0, at06, at09 = points
    assert at0.precision == pytest.approx(3 / 5)
    assert at0.recall == 1.0
    assert at06.precision == 1.0
    assert at06.recall == pytest.approx(3 / 3)
    assert at09.recall == pytest.approx(1 / 3)
    assert at09.precision == 1.0


def test_precision_empty_selection_is_one():
    points = precision_recall_curve(_scores(), _is_valid, taus=(1.1,))
    assert points[0].precision == 1.0
    assert points[0].n_selected == 0


def test_sample_candidates_caps_size():
    scores = {RetSame(f"C{i}.m"): 0.5 for i in range(200)}
    sampled = sample_candidates(scores, n=120, seed=1)
    assert len(sampled) == 120
    assert sample_candidates(_scores(), n=120) == _scores()


def test_spec_ordering_auc():
    assert spec_ordering_auc(_scores(), _is_valid) == 1.0
    assert spec_ordering_auc({}, _is_valid) != spec_ordering_auc({}, _is_valid)  # nan


# ----------------------------------------------------------------------
# Tab. 4 classifier


def _roundtrip_program(key_get="k"):
    pb = ProgramBuilder(source="t.java")
    b = pb.function("main")
    m = b.alloc("HashMap")
    k1 = b.const("k")
    v = b.alloc("File")
    b.call(PUT, receiver=m, args=[k1, v], returns=False)
    k2 = b.const(key_get)
    got = b.call(GET, receiver=m, args=[k2])
    b.call("File.getName", receiver=got, returns=False)
    pb.add(b.finish())
    return pb.finish()


def test_classifier_precise_gain():
    diffs = classify_program(_roundtrip_program(), TRUE_SPECS, TRUE_SPECS)
    assert diffs
    assert all(d.category == CATEGORY_PRECISE for d in diffs)


def test_classifier_wrong_spec():
    """A spec for an API with no such semantics must be flagged."""
    pb = ProgramBuilder(source="w.java")
    b = pb.function("main")
    it = b.alloc("Iterator")
    a = b.call("Iterator.next", receiver=it)
    b.call("File.getName", receiver=a, returns=False)
    c = b.call("Iterator.next", receiver=it)
    b.call("File.getPath", receiver=c, returns=False)
    pb.add(b.finish())
    program = pb.finish()
    wrong = SpecSet([RetSame("Iterator.next")])
    diffs = classify_program(program, wrong, SpecSet())
    assert diffs
    assert all(d.category == CATEGORY_WRONG_SPEC for d in diffs)


def test_classifier_coverage_mode():
    """Unsound aliasing introduced only by ⊤/⊥ fields (§6.4)."""
    pb = ProgramBuilder(source="c.java")
    b = pb.function("main")
    m = b.alloc("HashMap")
    api = b.alloc("Api")
    unknown = b.call("Api.foo", receiver=api)
    v = b.alloc("File")
    b.call(PUT, receiver=m, args=[unknown, v], returns=False)
    k = b.const("other")
    got = b.call(GET, receiver=m, args=[k])
    b.call("File.getName", receiver=got, returns=False)
    pb.add(b.finish())
    program = pb.finish()
    # the learned spec is correct, but the key is unknown: only the
    # coverage extension introduces the (unsound for "other") relation
    diffs = classify_program(program, TRUE_SPECS, SpecSet())
    categories = {d.category for d in diffs}
    assert CATEGORY_COVERAGE_MODE in categories


def test_classifier_no_diff_without_specs():
    assert classify_program(_roundtrip_program(), SpecSet(), SpecSet()) == []


def test_coverage_report_aggregation():
    report = CoverageReport(
        diffs=[
            SiteDiff("a.java", GET, CATEGORY_PRECISE, 2, 0),
            SiteDiff("b.java", GET, CATEGORY_PRECISE, 1, 0),
            SiteDiff("b.java", GET, CATEGORY_WRONG_SPEC, 1, 1),
        ],
        total_loc=300,
    )
    counts = report.counts()
    assert counts[CATEGORY_PRECISE] == 2
    assert counts[CATEGORY_WRONG_SPEC] == 1
    per_loc = report.loc_per_site()
    assert per_loc[CATEGORY_PRECISE] == pytest.approx(150)
    assert per_loc[CATEGORY_COVERAGE_MODE] == float("inf")


# ----------------------------------------------------------------------
# table rendering


def test_format_table_alignment():
    text = format_table(["a", "long header"], [["xx", 1], ["y", 22]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].index("long header") == lines[2].index("1") or True
    assert "---" in lines[1]


def test_specs_by_package():
    from repro.corpus import java_registry
    from repro.eval.tables import specs_by_package

    reg = java_registry()
    specs = SpecSet([
        RetArg(GET, PUT, 2), RetSame(GET),
        RetSame("android.view.ViewGroup.findViewById"),
    ])
    rows = specs_by_package(specs, reg)
    assert rows[0][0] == "java.util"
    assert rows[0][1] == 2
