"""Tests for generator internals: scenarios, knobs, helper routing."""

import random

import pytest

from repro.corpus import (
    CorpusConfig,
    CorpusGenerator,
    FluentRole,
    java_registry,
    python_registry,
)
from repro.corpus.generator import _JavaGen, _PythonGen
from repro.frontend.minijava import parse_minijava
from repro.ir import iter_calls


def _java_gen(seed=1, **cfg):
    reg = java_registry()
    return _JavaGen(reg, CorpusConfig(seed=seed, **cfg), random.Random(seed)), reg


def test_container_roundtrip_emits_store_and_load():
    gen, reg = _java_gen()
    cls = next(c for c in reg.classes if c.fqn == "java.util.HashMap")
    gen.container_roundtrip(cls)
    text = gen.writer.text()
    assert ".put(" in text and ".get(" in text


def test_reader_repeat_repeats():
    gen, reg = _java_gen()
    cls = next(c for c in reg.classes
               if c.fqn == "android.view.ViewGroup")
    gen.reader_repeat(cls)
    text = gen.writer.text()
    assert text.count("findViewById") >= 2


def test_fluent_chain_emits_chain_and_finisher():
    gen, reg = _java_gen(seed=3)
    cls = next(c for c in reg.classes
               if isinstance(c.role, FluentRole)
               and c.fqn == "java.lang.StringBuilder")
    gen.fluent_chain(cls)
    text = gen.writer.text()
    assert ".append(" in text
    assert ".toString()" in text


def test_helper_routing_generates_function():
    reg = java_registry()
    gen = CorpusGenerator(reg, CorpusConfig(n_files=40, seed=5,
                                            helper_prob=1.0))
    files = gen.generate()
    assert any("void store" in f.text for f in files)
    # all such files still parse and produce two functions
    f = next(f for f in files if "void store" in f.text)
    program = parse_minijava(f.text, reg.signatures(), f.name)
    assert len(program.functions) >= 2


def test_unknown_key_probability_zero_means_no_compute_key():
    reg = java_registry()
    gen = CorpusGenerator(reg, CorpusConfig(n_files=40, seed=5,
                                            unknown_key_prob=0.0))
    assert not any("computeKey" in f.text for f in gen.generate())


def test_unknown_key_probability_one_emits_compute_key():
    reg = java_registry()
    gen = CorpusGenerator(reg, CorpusConfig(n_files=40, seed=5,
                                            unknown_key_prob=1.0))
    assert any("computeKey" in f.text for f in gen.generate())


def test_mismatch_prob_controls_key_reuse():
    reg = java_registry()
    always = CorpusGenerator(reg, CorpusConfig(
        n_files=30, seed=5, mismatch_key_prob=0.0))
    programs = always.programs()
    # with no mismatches, every HashMap roundtrip matches RetArg: count
    # matches via the learner's matcher on one graph
    assert programs  # smoke: generation under extreme knobs works


def test_python_trap_pop_scenario():
    reg = python_registry()
    rng = random.Random(7)
    gen = _PythonGen(reg, CorpusConfig(seed=7), rng)
    cls = next(c for c in reg.classes
               if c.fqn == "List" and c.role.__class__.__name__ == "TrapRole")
    gen.trap(cls)
    text = gen.writer.text()
    assert ".pop()" in text and ".append(" in text


def test_python_readline_trap_scenario():
    reg = python_registry()
    rng = random.Random(7)
    gen = _PythonGen(reg, CorpusConfig(seed=7), rng)
    cls = next(c for c in reg.classes if c.fqn == "file")
    gen.trap(cls)
    text = gen.writer.text()
    assert text.count(".readline()") == 2


def test_generated_classes_recorded():
    reg = java_registry()
    gen = CorpusGenerator(reg, CorpusConfig(n_files=20, seed=9))
    for f in gen.generate():
        for cls in f.classes:
            assert any(c.fqn == cls for c in reg.classes)


def test_copy_trap_separate_lives():
    gen, reg = _java_gen(seed=11)
    cls = next(c for c in reg.classes if c.fqn == "java.lang.String")
    gen.copy_trap(cls)
    text = gen.writer.text()
    assert ".concat(" in text
