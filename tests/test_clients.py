"""Tests for the type-state and taint clients (paper §7.4, Fig. 8)."""

from repro.clients import (
    TaintConfig,
    TypestateProperty,
    check_typestate,
    find_taint_flows,
)
from repro.clients.typestate import ITERATOR_PROPERTY
from repro.frontend.minijava import parse_minijava
from repro.frontend.pyfront import parse_python
from repro.frontend.signatures import ApiSignatures, MethodSig
from repro.specs import RetArg, RetSame, SpecSet

LIST_SPECS = SpecSet([
    RetArg("java.util.List.get", "java.util.List.set", 2),
    RetSame("java.util.List.get"),
])
DICT_SPECS = SpecSet([
    RetArg("Dict.SubscriptLoad", "Dict.SubscriptStore", 2),
    # setdefault(k, default) stores the default, readable via d[k]
    RetArg("Dict.SubscriptLoad", "Dict.setdefault", 2),
    RetSame("Dict.SubscriptLoad"),
])


def _fig8a_program():
    """Fig. 8a: iters.get(i).hasNext() guards iters.get(i).next()."""
    sigs = ApiSignatures()
    sigs.register(MethodSig("java.util.List", "get", "java.util.Iterator",
                            ("int",)))
    sigs.register(MethodSig("java.util.Iterator", "hasNext", "boolean"))
    sigs.register(MethodSig("java.util.Iterator", "next", "?"))
    src = (
        "import java.util.List;\n"
        "List iters = new ArrayList();\n"
        "if (iters.get(0).hasNext()) {\n"
        "    use(iters.get(0).next());\n"
        "}\n"
    )
    return parse_minijava(src, sigs, "fig8a.java")


def test_fig8a_false_positive_without_specs():
    program = _fig8a_program()
    violations = check_typestate(program, ITERATOR_PROPERTY)
    assert len(violations) == 1  # the two get(0) results look unrelated


def test_fig8a_verified_with_specs():
    program = _fig8a_program()
    violations = check_typestate(program, ITERATOR_PROPERTY, specs=LIST_SPECS)
    assert violations == []


def test_typestate_real_violation_still_reported():
    sigs = ApiSignatures()
    sigs.register(MethodSig("java.util.Iterator", "next", "?"))
    src = "it = makeIterator();\nx = it.next();\n"
    program = parse_minijava(src, sigs, "bad.java")
    violations = check_typestate(program, ITERATOR_PROPERTY, specs=LIST_SPECS)
    assert len(violations) == 1


def test_typestate_direct_guard_discharges():
    sigs = ApiSignatures()
    src = (
        "it = makeIterator();\n"
        "if (it.hasNext()) {\n"
        "    x = it.next();\n"
        "}\n"
    )
    program = parse_minijava(src, sigs, "ok.java")
    assert check_typestate(program, ITERATOR_PROPERTY) == []


def _fig8b_program():
    """Fig. 8b: user value flows via setdefault/pop into html output."""
    src = (
        "def render(**kwargs):\n"
        "    kwargs.setdefault('data-value', kwargs.pop('value', ''))\n"
        "    return html_output(kwargs['data-value'])\n"
        "render(value=user_input())\n"
    )
    return parse_python(src, source="fig8b.py")


TAINT = TaintConfig.of(sources=["user_input", "pop"], sinks=["html_output"],
                       sanitizers=["escape"])


def test_fig8b_flow_found_with_specs():
    """The dict aliasing specs connect setdefault's stored value to the
    subscript read that reaches the sink."""
    program = _fig8b_program()
    flows = find_taint_flows(program, TAINT, specs=DICT_SPECS)
    assert flows


def test_fig8b_flow_missed_without_specs():
    program = _fig8b_program()
    flows = find_taint_flows(program, TAINT)
    assert flows == []


def test_taint_direct_flow():
    src = "x = user_input()\nhtml_output(x)\n"
    program = parse_python(src, source="direct.py")
    config = TaintConfig.of(["user_input"], ["html_output"])
    flows = find_taint_flows(program, config)
    assert len(flows) == 1
    assert flows[0].sink_arg == 1


def test_taint_sanitizer_blocks():
    src = "x = user_input()\ny = escape(x)\nhtml_output(y)\n"
    program = parse_python(src, source="san.py")
    config = TaintConfig.of(["user_input"], ["html_output"], ["escape"])
    assert find_taint_flows(program, config) == []


def test_taint_through_dict_roundtrip():
    src = (
        "d = {}\n"
        "d['k'] = user_input()\n"
        "html_output(d['k'])\n"
    )
    program = parse_python(src, source="dict.py")
    config = TaintConfig.of(["user_input"], ["html_output"])
    assert find_taint_flows(program, config) == []  # unaware: missed
    assert find_taint_flows(program, config, specs=DICT_SPECS)


def test_custom_typestate_property():
    prop = TypestateProperty(guard="isOpen", trigger="write", name="open")
    sigs = ApiSignatures()
    src = ("f = openFile();\n"
           "g = openFile();\n"
           "if (f.isOpen()) { f.write(); } \ng.write();\n")
    program = parse_minijava(src, sigs, "p.java")
    violations = check_typestate(program, prop)
    assert len(violations) == 1  # only g.write() unguarded


# ----------------------------------------------------------------------
# obligation (resource-leak) client


def test_obligation_direct_close_ok():
    from repro.clients import check_obligations

    src = 'fh = open("f")\nfh.read()\nfh.close()\n'
    program = parse_python(src, source="ok.py")
    assert check_obligations(program) == []


def test_obligation_leak_reported():
    from repro.clients import check_obligations

    src = 'fh = open("f")\nfh.read()\n'
    program = parse_python(src, source="leak.py")
    violations = check_obligations(program)
    assert len(violations) == 1
    assert violations[0].acquire_site.method_id == "open"


def test_obligation_through_container_needs_specs():
    """A handle stored in a dict and closed after retrieval is a leak
    to the unaware analysis but discharged with the dict specs."""
    from repro.clients import check_obligations

    src = (
        'cache = {}\n'
        'cache["f"] = open("f")\n'
        'h = cache["f"]\n'
        'h.close()\n'
    )
    program = parse_python(src, source="cached.py")
    assert len(check_obligations(program)) == 1  # unaware: leak
    assert check_obligations(program, specs=DICT_SPECS) == []


def test_obligation_close_before_open_not_discharged():
    from repro.clients import check_obligations

    src = (
        'other = open("a")\n'
        'other.close()\n'
        'fh = open("b")\n'  # never closed
        'fh.read()\n'
    )
    program = parse_python(src, source="order.py")
    violations = check_obligations(program)
    assert len(violations) == 1


def test_custom_obligation_property():
    from repro.clients import ObligationProperty, check_obligations

    prop = ObligationProperty(acquire="lock", release="unlock", name="lk")
    src = "l = lock()\nl.unlock()\nm = lock()\n"
    program = parse_python(src, source="locks.py")
    violations = check_obligations(program, prop)
    assert len(violations) == 1
