"""The crash-consistent state layer: journal recovery ladder, durable
snapshots, crash-point fault injection, the statistics store behind
``learn --append``, and byte-identical recovery after injected crashes."""

import pytest

from repro.corpus import CorpusConfig, CorpusGenerator, java_registry
from repro.mining import MiningConfig, MiningEngine
from repro.mining.cache import (
    BUNDLE_SUFFIX,
    AnalysisCache,
    pipeline_fingerprint,
)
from repro.runtime import RuntimeConfig
from repro.runtime.checkpoint import atomic_write_bytes
from repro.specs.patterns import RetSame, SpecSet
from repro.specs.pipeline import PipelineConfig
from repro.specs.serialize import specs_to_json
from repro.store.faults import (
    CrashPlan,
    CrashSpec,
    SimulatedCrash,
    install_crash_plan,
)
from repro.store.journal import FILE_MAGIC, RecordJournal
from repro.store.snapshot import (
    SnapshotCorrupt,
    load_snapshot,
    read_snapshot,
    write_snapshot,
)
from repro.store.stats import SNAPSHOT_NAME, StatsStore, StoredProgram


@pytest.fixture(autouse=True)
def disarm_crash_plans():
    yield
    install_crash_plan(None)


def java_corpus(n=10, seed=7):
    return CorpusGenerator(
        java_registry(), CorpusConfig(n_files=n, seed=seed)).programs()


def store_learn(programs, store_dir, *, append=False, jobs=1):
    config = PipelineConfig(runtime=RuntimeConfig())
    mining = MiningConfig(jobs=jobs, store_dir=str(store_dir),
                          append=append)
    return MiningEngine(config, mining).learn(programs)


def spec_text(learned):
    return specs_to_json(learned.specs, learned.scores)


# ----------------------------------------------------------------------
# the record journal


def test_journal_roundtrip(tmp_path):
    path = tmp_path / "j.uspj"
    with RecordJournal(path) as journal:
        journal.append(1, b"alpha")
        journal.append(2, b"")
        journal.append(3, b"x" * 1000)
    records, report = RecordJournal(path).recover()
    assert records == [(1, b"alpha"), (2, b""), (3, b"x" * 1000)]
    assert report.clean and report.n_records == 3


def test_journal_truncates_torn_tail(tmp_path):
    path = tmp_path / "j.uspj"
    with RecordJournal(path) as journal:
        journal.append(1, b"keep")
        journal.append(1, b"torn-away")
    with path.open("r+b") as fh:
        fh.truncate(path.stat().st_size - 3)
    records, report = RecordJournal(path).recover()
    assert records == [(1, b"keep")]
    assert report.truncated_bytes > 0 and report.n_quarantined == 0
    # the repaired journal accepts appends again
    with RecordJournal(path) as journal:
        journal.append(2, b"after")
    records, report = RecordJournal(path).recover()
    assert records == [(1, b"keep"), (2, b"after")] and report.clean


def test_journal_quarantines_corrupt_payload_and_continues(tmp_path):
    path = tmp_path / "j.uspj"
    with RecordJournal(path) as journal:
        journal.append(1, b"first")
        journal.append(1, b"mangled")
        journal.append(1, b"third")
    data = bytearray(path.read_bytes())
    data[data.index(b"mangled")] ^= 0xFF
    path.write_bytes(bytes(data))
    records, report = RecordJournal(path).recover()
    # one record lost, the boundary held: everything else survives
    assert records == [(1, b"first"), (1, b"third")]
    assert report.n_quarantined == 1
    assert report.quarantined[0].reason == "payload-crc"


def test_journal_header_damage_quarantines_tail(tmp_path):
    path = tmp_path / "j.uspj"
    with RecordJournal(path) as journal:
        journal.append(1, b"first")
        journal.append(1, b"second")
    data = bytearray(path.read_bytes())
    # smash the second frame's magic: framing is lost from there on
    from repro.store.journal import HEADER_SIZE
    data[data.index(b"second") - HEADER_SIZE] ^= 0xFF
    path.write_bytes(bytes(data))
    records, report = RecordJournal(path).recover()
    assert records == [(1, b"first")]
    assert any(q.reason == "header-crc" for q in report.quarantined)
    # the unparseable tail was kept for forensics, not destroyed
    assert (tmp_path / "j.uspj.quarantined").exists()


def test_journal_foreign_file_moved_aside(tmp_path):
    path = tmp_path / "j.uspj"
    path.write_bytes(b"definitely not a journal")
    records, report = RecordJournal(path).recover()
    assert records == []
    assert report.quarantined[0].reason == "file-header"
    assert not path.exists()
    assert (tmp_path / "j.uspj.quarantined").exists()
    # a fresh journal starts cleanly in its place
    with RecordJournal(path) as journal:
        journal.append(1, b"fresh")
    records, report = RecordJournal(path).recover()
    assert records == [(1, b"fresh")] and report.clean


def test_journal_missing_or_empty_is_clean(tmp_path):
    records, report = RecordJournal(tmp_path / "absent.uspj").recover()
    assert records == [] and report.clean
    (tmp_path / "empty.uspj").write_bytes(b"")
    records, report = RecordJournal(tmp_path / "empty.uspj").recover()
    assert records == [] and report.clean


# ----------------------------------------------------------------------
# crash-point injection


def test_crash_spec_parsing():
    spec = CrashSpec.parse("pre-fsync:journal")
    assert spec.point == "pre-fsync" and spec.match == "journal"
    assert CrashSpec.parse("write:snap:17").byte == 17
    with pytest.raises(ValueError):
        CrashSpec.parse("nonsense")
    with pytest.raises(ValueError):
        CrashSpec.parse("bogus-point:x")
    with pytest.raises(ValueError):
        CrashSpec.parse("write:x")  # the write point needs a byte count


@pytest.mark.parametrize("spec", [
    "write:dest.bin:3",
    "pre-fsync:dest.bin",
    "pre-rename:dest.bin",
    "post-rename:dest.bin",
])
def test_atomic_write_crash_leaves_old_or_new(tmp_path, spec):
    dest = tmp_path / "dest.bin"
    dest.write_bytes(b"old-contents")
    install_crash_plan(CrashPlan.parse(spec))
    with pytest.raises(SimulatedCrash):
        atomic_write_bytes(dest, b"new-contents!", durable=True)
    # the invariant under every crash point: the destination is the
    # old bytes or the new bytes, never a torn mixture
    assert dest.read_bytes() in (b"old-contents", b"new-contents!")
    install_crash_plan(None)
    atomic_write_bytes(dest, b"new-contents!", durable=True)
    assert dest.read_bytes() == b"new-contents!"


def test_crash_plan_fires_once(tmp_path):
    plan = CrashPlan.parse("pre-rename:once.bin")
    install_crash_plan(plan)
    with pytest.raises(SimulatedCrash):
        atomic_write_bytes(tmp_path / "once.bin", b"x", durable=True)
    assert plan.fired and not plan.specs
    # spent: the recovery rerun cannot re-trip the same spec
    atomic_write_bytes(tmp_path / "once.bin", b"x", durable=True)
    assert (tmp_path / "once.bin").read_bytes() == b"x"


@pytest.mark.parametrize("spec", [
    "write:crash.uspj:5",
    "pre-fsync:crash.uspj",
])
def test_journal_append_crash_never_loses_committed_records(tmp_path, spec):
    path = tmp_path / "crash.uspj"
    with RecordJournal(path) as journal:
        journal.append(1, b"committed-1")
        journal.append(1, b"committed-2")
    install_crash_plan(CrashPlan.parse(spec))
    journal = RecordJournal(path)
    with pytest.raises(SimulatedCrash):
        journal.append(1, b"doomed")
    journal.close()
    install_crash_plan(None)
    records, report = RecordJournal(path).recover()
    # committed records always survive; the in-flight one is either
    # fully present (its bytes landed) or cleanly truncated away
    assert records[:2] == [(1, b"committed-1"), (1, b"committed-2")]
    assert all(payload == b"doomed" for _, payload in records[2:])
    records, report = RecordJournal(path).recover()
    assert report.clean  # the repair itself left a clean journal


# ----------------------------------------------------------------------
# snapshots


def test_snapshot_roundtrip(tmp_path):
    path = tmp_path / "snap.usps"
    write_snapshot(path, {"hello": [1, 2, 3]})
    assert read_snapshot(path) == {"hello": [1, 2, 3]}
    assert load_snapshot(path) == ({"hello": [1, 2, 3]}, None)


def test_snapshot_corruption_is_typed_and_quarantined(tmp_path):
    path = tmp_path / "snap.usps"
    write_snapshot(path, {"hello": [1, 2, 3]})
    data = bytearray(path.read_bytes())
    data[-3] ^= 0x01  # damage the CRC trailer
    path.write_bytes(bytes(data))
    with pytest.raises(SnapshotCorrupt):
        read_snapshot(path)
    obj, reason = load_snapshot(path)
    assert obj is None and reason is not None
    assert not path.exists()  # moved aside, not left to re-fail
    assert path.with_name("snap.usps.corrupt").exists()
    assert load_snapshot(path) == (None, None)  # absent = plain miss


# ----------------------------------------------------------------------
# the statistics store


def _program(i, samples=()):
    return StoredProgram(
        fingerprint=f"fp{i}", key=f"{i:06d}:p{i}.java",
        source=f"p{i}.java", samples=tuple(samples),
        n_events=i, n_edges=i)


def test_stats_store_roundtrip_and_retire(tmp_path):
    with StatsStore(tmp_path, "f" * 64) as store:
        store.put_program(_program(0, (1, 2, 3)))
        store.put_program(_program(1, (9,)))
    reopened = StatsStore(tmp_path, "f" * 64)
    assert len(reopened) == 2 and reopened.recovery.clean
    assert reopened.get("fp0").samples == (1, 2, 3)
    reopened.retire(["fp0", "never-stored"])
    reopened.close()
    third = StatsStore(tmp_path, "f" * 64)
    assert len(third) == 1 and third.get("fp1") is not None
    third.close()


def test_stats_store_compaction_preserves_state(tmp_path):
    store = StatsStore(tmp_path, "a" * 64)
    for i in range(5):
        store.put_program(_program(i, (i,)))
    store.compact()
    assert store.journal_bytes == len(FILE_MAGIC)  # journal emptied
    store.close()
    reopened = StatsStore(tmp_path, "a" * 64)
    assert len(reopened) == 5
    assert reopened.get("fp3").samples == (3,)
    reopened.close()


@pytest.mark.parametrize("spec", [
    "pre-rename:" + SNAPSHOT_NAME,
    "post-rename:" + SNAPSHOT_NAME,
])
def test_compaction_crash_is_recoverable(tmp_path, spec):
    store = StatsStore(tmp_path, "c" * 64)
    for i in range(3):
        store.put_program(_program(i, (i,)))
    install_crash_plan(CrashPlan.parse(spec))
    with pytest.raises(SimulatedCrash):
        store.compact()
    install_crash_plan(None)
    store.close()
    # post-rename dies between the snapshot write and the journal
    # reset: records exist in both — replay is idempotent, not doubled
    reopened = StatsStore(tmp_path, "c" * 64)
    assert len(reopened) == 3
    assert reopened.get("fp1").samples == (1,)
    reopened.close()


def test_generation_drift_reports_gained_lost_shifted(tmp_path):
    store = StatsStore(tmp_path, "d" * 64)
    first = store.record_generation(
        SpecSet([RetSame("A.get"), RetSame("B.get")]),
        {RetSame("A.get"): 0.9, RetSame("B.get"): 0.8})
    assert first.previous is None and len(first.gained) == 2
    second = store.record_generation(
        SpecSet([RetSame("A.get"), RetSame("C.get")]),
        {RetSame("A.get"): 0.7, RetSame("C.get"): 0.6})
    assert second.generation == 2 and second.previous == 1
    assert [s["method"] for s in second.gained] == ["C.get"]
    assert [s["method"] for s in second.lost] == ["B.get"]
    assert [s["method"] for s in second.shifted] == ["A.get"]
    assert second.n_unchanged == 0 and second.changed
    store.close()
    # the baseline is durable: a reopened store diffs against it
    reopened = StatsStore(tmp_path, "d" * 64)
    assert reopened.generation == 2
    third = reopened.record_generation(
        SpecSet([RetSame("A.get"), RetSame("C.get")]),
        {RetSame("A.get"): 0.7, RetSame("C.get"): 0.6})
    assert not third.changed and third.n_unchanged == 2
    reopened.close()


# ----------------------------------------------------------------------
# long histories: many generations with interleaved compactions


def _generation_specs(g):
    """A rotating spec set whose scores shift every generation."""
    specs = [RetSame(f"C{(g + i) % 5}.load") for i in range(3)]
    scores = {s: round(0.5 + ((g + i) % 10) / 20, 6)
              for i, s in enumerate(specs)}
    return SpecSet(specs), scores


def _grow_history(store, n, compact_every=None):
    for g in range(n):
        store.put_program(_program(g, (g,)))
        drift = store.record_generation(*_generation_specs(g))
        assert drift.generation == store.generation
        if compact_every and (g + 1) % compact_every == 0:
            store.compact()


def test_long_history_replay_is_idempotent(tmp_path):
    with StatsStore(tmp_path, "e" * 64) as store:
        _grow_history(store, 60, compact_every=7)
        generation = store.generation
        last_drift = store.record_generation(*_generation_specs(59))

    def state_of(s):
        return (len(s), s.generation,
                sorted(s.programs),
                {fp: s.get(fp).samples for fp in s.programs})

    reopened = StatsStore(tmp_path, "e" * 64)
    assert reopened.recovery.clean
    assert reopened.generation == generation + 1
    first_state = state_of(reopened)
    # replaying the same final specs produces zero drift: the recorded
    # baseline survived 60 generations and 8 compactions
    replay = reopened.record_generation(*_generation_specs(59))
    assert not replay.changed
    assert replay.n_unchanged == last_drift.n_unchanged \
        + len(last_drift.gained) + len(last_drift.shifted)
    reopened.compact()
    reopened.close()
    # a compaction right after recovery changes nothing observable
    again = StatsStore(tmp_path, "e" * 64)
    assert state_of(again)[0:2] == (first_state[0], first_state[1] + 1)
    assert state_of(again)[2:] == first_state[2:]
    again.close()


def test_long_history_journal_stays_bounded(tmp_path):
    # auto-compaction keeps the journal near the configured budget no
    # matter how many generations accumulate
    budget = 16 << 10
    store = StatsStore(tmp_path, "e" * 64, compact_bytes=budget)
    high_water = 0
    for g in range(50):
        store.put_program(_program(g, tuple(range(g % 7))))
        store.record_generation(*_generation_specs(g))
        store.maybe_compact()
        high_water = max(high_water, store.journal_bytes)
    # one generation's worth of slack above the budget, not unbounded
    assert high_water < budget + (8 << 10)
    assert (store.directory / SNAPSHOT_NAME).exists()
    store.close()
    reopened = StatsStore(tmp_path, "e" * 64)
    assert len(reopened) == 50 and reopened.generation == 50
    reopened.close()


@pytest.mark.parametrize("spec", [
    "write:" + SNAPSHOT_NAME + ":64",
    "pre-fsync:" + SNAPSHOT_NAME,
    "pre-rename:" + SNAPSHOT_NAME,
    "post-rename:" + SNAPSHOT_NAME,
])
def test_mid_compaction_crash_loses_no_generation(tmp_path, spec):
    store = StatsStore(tmp_path, "e" * 64)
    _grow_history(store, 52, compact_every=13)
    expected_programs = sorted(store.programs)
    expected_generation = store.generation

    install_crash_plan(CrashPlan.parse(spec))
    with pytest.raises(SimulatedCrash):
        store.compact()
    install_crash_plan(None)
    store.close()

    reopened = StatsStore(tmp_path, "e" * 64)
    assert sorted(reopened.programs) == expected_programs
    assert reopened.generation == expected_generation
    # the drift baseline survived too: replaying the last generation's
    # specs reports zero change
    assert not reopened.record_generation(*_generation_specs(51)).changed
    # and the store still accepts new generations cleanly
    drift = reopened.record_generation(*_generation_specs(52))
    assert drift.generation == expected_generation + 2
    reopened.compact()
    reopened.close()
    final = StatsStore(tmp_path, "e" * 64)
    assert final.generation == expected_generation + 2
    assert len(final) == 52
    final.close()


# ----------------------------------------------------------------------
# cache integrity (CRC trailer)


def test_corrupt_cache_bundle_is_a_miss_and_deleted(tmp_path):
    cache = AnalysisCache(tmp_path, fingerprint="fp")
    key = cache.store_bundle("prog0", {"not": "checked on store"})
    path = tmp_path / f"{key}{BUNDLE_SUFFIX}"
    data = bytearray(path.read_bytes())
    data[len(data) // 2] ^= 0xFF
    path.write_bytes(bytes(data))
    assert cache.load_bundle_by_key(key) is None
    assert cache.n_corrupt == 1
    assert not path.exists()  # deleted so the slot re-analyses cleanly


def test_truncated_cache_bundle_is_a_miss(tmp_path):
    cache = AnalysisCache(tmp_path, fingerprint="fp")
    key = cache.store_bundle("prog0", {"payload": "x" * 64})
    path = tmp_path / f"{key}{BUNDLE_SUFFIX}"
    path.write_bytes(path.read_bytes()[:10])
    assert cache.load_bundle_by_key(key) is None
    assert cache.n_corrupt == 1 and not path.exists()


def test_absent_cache_bundle_is_a_plain_miss(tmp_path):
    cache = AnalysisCache(tmp_path, fingerprint="fp")
    assert cache.load_bundle_by_key("no-such-entry") is None
    assert cache.n_corrupt == 0  # absence is a miss, not corruption


def test_corrupt_entry_recounted_in_mining_report(tmp_path):
    programs = java_corpus(4)
    config = PipelineConfig(runtime=RuntimeConfig())
    mining = MiningConfig(jobs=1, cache_dir=str(tmp_path / "cache"))
    MiningEngine(config, mining).learn(programs)
    bundles = sorted((tmp_path / "cache").glob(f"*{BUNDLE_SUFFIX}"))
    assert len(bundles) == 4
    data = bytearray(bundles[0].read_bytes())
    data[len(data) // 2] ^= 0xFF
    bundles[0].write_bytes(bytes(data))
    warm = MiningEngine(config, mining).learn(programs)
    assert warm.mining.n_cache_corrupt == 1
    assert warm.mining.n_analyzed == 1  # the damaged one, re-analysed
    assert warm.mining.n_cached == 3


# ----------------------------------------------------------------------
# learn --append end to end


def test_append_reanalyzes_exactly_the_changed_programs(tmp_path):
    corpus_a = java_corpus(8, seed=7)
    first = store_learn(corpus_a, tmp_path / "store")
    assert first.mining.n_analyzed == 8
    assert first.mining.store_generation == 1
    assert first.mining.drift["previous"] is None

    # an unchanged corpus re-analyses nothing at all
    replay = store_learn(corpus_a, tmp_path / "store", append=True)
    assert replay.mining.n_analyzed == 0
    assert replay.mining.n_from_store == 8
    assert spec_text(replay) == spec_text(first)

    # corpus B: one program edited (same source, new body), one added
    extras = java_corpus(2, seed=99)
    extras[0].source = corpus_a[3].source
    extras[1].source = "brand_new.java"
    corpus_b = corpus_a[:3] + [extras[0]] + corpus_a[4:] + [extras[1]]
    second = store_learn(corpus_b, tmp_path / "store", append=True)
    assert second.mining.n_analyzed == 2  # exactly the k changed files
    assert second.mining.n_from_store == 7
    assert second.mining.store_generation == 3
    assert second.mining.drift is not None

    # byte-identical to a from-scratch run over the same corpus
    scratch = store_learn(corpus_b, tmp_path / "scratch")
    assert spec_text(second) == spec_text(scratch)

    # the edited program's old fingerprint was retired, not leaked
    store = StatsStore(tmp_path / "store",
                       pipeline_fingerprint(PipelineConfig()))
    assert len(store) == 9
    store.close()


def test_learn_crash_then_rerun_recovers_byte_identical_specs(tmp_path):
    programs = java_corpus(6, seed=7)
    baseline = store_learn(programs, tmp_path / "clean")
    expected = spec_text(baseline)

    # die at the fsync of the first journal append — after analysis,
    # before training
    install_crash_plan(CrashPlan.parse("pre-fsync:journal.uspj"))
    with pytest.raises(SimulatedCrash):
        store_learn(programs, tmp_path / "store")
    install_crash_plan(None)

    rerun = store_learn(programs, tmp_path / "store")
    assert spec_text(rerun) == expected
    # zero lost completed work: the crashed run's analysis was reused
    assert rerun.mining.n_cached == 6 and rerun.mining.n_analyzed == 0


@pytest.mark.parametrize("spec", [
    "write:journal.uspj:20",
    "pre-fsync:journal.uspj",
])
def test_append_run_crash_is_recoverable(tmp_path, spec):
    programs = java_corpus(5, seed=7)
    store_learn(programs, tmp_path / "store")

    extras = java_corpus(1, seed=23)
    extras[0].source = "added_later.java"
    corpus_b = programs + extras

    # the crash fires while journalling the new program's statistics
    install_crash_plan(CrashPlan.parse(spec))
    with pytest.raises(SimulatedCrash):
        store_learn(corpus_b, tmp_path / "store", append=True)
    install_crash_plan(None)

    rerun = store_learn(corpus_b, tmp_path / "store", append=True)
    scratch = store_learn(corpus_b, tmp_path / "scratch")
    assert spec_text(rerun) == spec_text(scratch)
    # nothing was lost to the crash: the new program's analysis is in
    # the cache, so the rerun computes nothing fresh
    assert rerun.mining.n_analyzed == 0
    assert rerun.mining.n_from_store >= 5


def test_sequential_append_heals_vanished_bundle(tmp_path, monkeypatch):
    programs = java_corpus(5, seed=7)
    first = store_learn(programs, tmp_path / "store")
    real = AnalysisCache.load_bundle_by_key
    zapped = []

    def vanish_once(self, cache_key):
        # simulate an eviction racing the extract phase: the bundle
        # disappears from disk after the store declared it present
        if not zapped:
            zapped.append(cache_key)
            target = self.directory / f"{cache_key}{BUNDLE_SUFFIX}"
            if target.exists():
                target.unlink()
            return None
        return real(self, cache_key)

    monkeypatch.setattr(AnalysisCache, "load_bundle_by_key", vanish_once)
    second = store_learn(programs, tmp_path / "store", append=True)
    assert zapped  # the fault actually fired
    assert second.mining.n_from_store == 5
    assert second.mining.n_cache_repairs == 1  # re-analysed in place
    assert spec_text(second) == spec_text(first)


def test_store_survives_corrupted_journal_mid_history(tmp_path):
    programs = java_corpus(5, seed=7)
    first = store_learn(programs, tmp_path / "store")
    fingerprint = pipeline_fingerprint(PipelineConfig())
    journal = (tmp_path / "store" / fingerprint[:16] / "journal.uspj")
    data = bytearray(journal.read_bytes())
    # bit rot inside the first record's payload: that one program's
    # statistics are quarantined, the rest of the journal still parses
    from repro.store.journal import HEADER_SIZE
    data[len(FILE_MAGIC) + HEADER_SIZE + 5] ^= 0xFF
    journal.write_bytes(bytes(data))

    second = store_learn(programs, tmp_path / "store", append=True)
    assert second.mining.n_from_store == 4
    # the damaged program still resolves from the analysis cache —
    # recovery degrades one layer at a time, it never recomputes
    assert second.mining.n_cached == 5 and second.mining.n_analyzed == 0
    assert spec_text(second) == spec_text(first)
