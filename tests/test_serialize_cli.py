"""Tests for spec serialization and the command-line interface."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.specs import RetArg, RetSame, SpecSet
from repro.specs.serialize import (
    spec_from_dict,
    spec_to_dict,
    specs_from_json,
    specs_to_json,
)


def test_spec_dict_roundtrip():
    specs = [
        RetSame("java.util.HashMap.get"),
        RetArg("java.util.HashMap.get", "java.util.HashMap.put", 2),
    ]
    for spec in specs:
        assert spec_from_dict(spec_to_dict(spec)) == spec


def test_specset_json_roundtrip():
    specs = SpecSet([
        RetSame("A.get"),
        RetArg("B.get", "B.put", 2),
        RetArg("C.load", "C.store", 3),
    ])
    scores = {RetSame("A.get"): 0.875}
    text = specs_to_json(specs, scores)
    loaded, loaded_scores = specs_from_json(text)
    assert set(loaded) == set(specs)
    assert loaded_scores[RetSame("A.get")] == pytest.approx(0.875)


def test_json_is_valid_and_versioned():
    data = json.loads(specs_to_json(SpecSet([RetSame("A.m")])))
    assert data["format"] == "uspec-specs"
    assert data["version"] == 1


def test_from_json_rejects_garbage():
    with pytest.raises(ValueError):
        specs_from_json('{"format": "other"}')
    with pytest.raises(ValueError):
        specs_from_json('{"format": "uspec-specs", "specs": [{"kind": "X"}]}')


# ----------------------------------------------------------------------
# CLI


@pytest.fixture(scope="module")
def specs_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "specs.json"
    specs = SpecSet([
        RetArg("Dict.SubscriptLoad", "Dict.SubscriptStore", 2),
        RetSame("Dict.SubscriptLoad"),
    ])
    path.write_text(specs_to_json(specs, {}))
    return path


def test_cli_show(specs_file, capsys):
    assert main(["show", str(specs_file)]) == 0
    out = capsys.readouterr().out
    assert "RetArg(Dict.SubscriptLoad, Dict.SubscriptStore, 2)" in out
    assert "2 specifications" in out


def test_cli_analyze_python_file(tmp_path, specs_file, capsys):
    target = tmp_path / "prog.py"
    target.write_text(
        "d = {}\n"
        "d['k'] = fetch()\n"
        "x = d['k']\n"
        "y = other()\n"
    )
    assert main(["analyze", str(target), "--specs", str(specs_file)]) == 0
    out = capsys.readouterr().out
    assert "API call sites" in out
    assert "may-alias" in out  # fetch() ~ SubscriptLoad ret


def test_cli_taint_finds_flow(tmp_path, specs_file, capsys):
    target = tmp_path / "vuln.py"
    target.write_text(
        "d = {}\n"
        "d['k'] = user_input()\n"
        "sink(d['k'])\n"
    )
    code = main(["taint", str(target), "--specs", str(specs_file),
                 "--source", "user_input", "--sink", "sink"])
    assert code == 1  # flows found → non-zero exit for CI use
    assert "FLOW" in capsys.readouterr().out


def test_cli_taint_clean_file(tmp_path, specs_file, capsys):
    target = tmp_path / "clean.py"
    target.write_text("x = safe()\nsink(escape(x))\n")
    code = main(["taint", str(target), "--specs", str(specs_file),
                 "--source", "user_input", "--sink", "sink",
                 "--sanitizer", "escape"])
    assert code == 0


def test_cli_analyze_minijava(tmp_path, capsys):
    target = tmp_path / "prog.java"
    target.write_text('x = api.make();\ny = x.use();\n')
    assert main(["analyze", str(target)]) == 0
    assert "API call sites" in capsys.readouterr().out


def test_cli_learn_small(tmp_path, capsys):
    out_file = tmp_path / "learned.json"
    code = main(["learn", "--language", "python", "--files", "25",
                 "--seed", "5", "--out", str(out_file)])
    assert code == 0
    specs, scores = specs_from_json(out_file.read_text())
    assert len(specs) >= 1
    assert all(0.0 <= v <= 1.0 for v in scores.values())
