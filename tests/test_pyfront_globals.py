"""Tests for Python module-global handling in the frontend and solver."""

from repro.clients import TaintConfig, find_taint_flows
from repro.frontend.pyfront import parse_python
from repro.ir import GlobalRead, GlobalWrite, Var, iter_instructions
from repro.pointsto import analyze
from repro.specs import RetArg, RetSame, SpecSet

DICT_SPECS = SpecSet([
    RetArg("Dict.SubscriptLoad", "Dict.SubscriptStore", 2),
    RetSame("Dict.SubscriptLoad"),
])


def _instrs(prog, fn):
    return list(iter_instructions(prog.functions[fn].body))


def test_module_assignments_publish_globals():
    prog = parse_python("cache = {}\n")
    writes = [i for i in _instrs(prog, "main") if isinstance(i, GlobalWrite)]
    assert [w.name for w in writes] == ["cache"]


def test_function_reads_global():
    prog = parse_python(
        "cache = {}\n"
        "def get(k):\n"
        "    return cache[k]\n"
    )
    reads = [i for i in _instrs(prog, "get") if isinstance(i, GlobalRead)]
    assert [r.name for r in reads] == ["cache"]


def test_global_type_propagates():
    """A global dict is recognised as Dict inside functions, so its
    subscripts get qualified method ids."""
    prog = parse_python(
        "cache = {}\n"
        "def get(k):\n"
        "    return cache[k]\n"
    )
    from repro.ir import Call

    calls = [i for i in _instrs(prog, "get") if isinstance(i, Call)]
    assert any(c.method == "Dict.SubscriptLoad" for c in calls)


def test_global_object_flow_across_functions():
    """The same dict object is seen at module level and inside functions."""
    prog = parse_python(
        "store = {}\n"
        "def put(v):\n"
        "    store['k'] = v\n"
        "def get():\n"
        "    return store['k']\n"
        "put(make())\n"
        "x = get()\n"
    )
    res = analyze(prog, specs=DICT_SPECS)
    # the retrieved object aliases the stored one
    from repro.ir.traversal import iter_calls

    make = next(c for c in iter_calls(prog.functions["main"])
                if c.method == "make")
    get_call = next(c for c in iter_calls(prog.functions["main"])
                    if c.method == "get")
    made = res.var_pts("main", (), make.dst)
    got = res.var_pts("main", (), get_call.dst)
    assert res.may_alias(made, got)


def test_global_taint_flow():
    """Taint flows through a module-level dict across functions."""
    prog = parse_python(
        "sessions = {}\n"
        "def login(user):\n"
        "    sessions[user] = request_arg()\n"
        "login('alice')\n"
        "html_params(sessions['alice'])\n"
    )
    config = TaintConfig.of(["request_arg"], ["html_params"])
    assert find_taint_flows(prog, config) == []  # unaware: missed
    # with specs + coverage mode: 'user' param is unknown — the write
    # lands in the ⊤ field and the literal read finds it
    from repro.pointsto import PointsToOptions

    flows = find_taint_flows(prog, config, specs=DICT_SPECS,
                             options=PointsToOptions(coverage_mode=True))
    assert flows


def test_locals_shadow_globals():
    prog = parse_python(
        "name = {}\n"
        "def f():\n"
        "    name = []\n"
        "    name.append(1)\n"
    )
    reads = [i for i in _instrs(prog, "f") if isinstance(i, GlobalRead)]
    assert reads == []  # the local binding wins after assignment
