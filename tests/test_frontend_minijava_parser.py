"""Tests for the MiniJava parser."""

import pytest

from repro.frontend.minijava import ParseError, parse
from repro.frontend.minijava import nodes as N


def test_import_and_toplevel_statement():
    f = parse('import java.util.HashMap;\nint x = 1;')
    assert f.imports == (N.Import("java.util.HashMap"),)
    assert isinstance(f.top_level[0], N.VarDecl)


def test_generic_type_declaration():
    f = parse('Map<String, List<File>> m = new HashMap<>();')
    decl = f.top_level[0]
    assert decl.type.name == "Map"
    assert decl.type.args[0].name == "String"
    assert decl.type.args[1].name == "List"
    assert decl.type.args[1].args[0].name == "File"
    assert isinstance(decl.init, N.New)
    assert decl.init.type.name == "HashMap"


def test_var_decl_vs_comparison_disambiguation():
    f = parse("a < b;")
    stmt = f.top_level[0]
    assert isinstance(stmt, N.ExprStmt)
    assert isinstance(stmt.expr, N.Binary)
    assert stmt.expr.op == "<"


def test_chained_method_calls():
    f = parse('String n = db.getFile().getName();')
    call = f.top_level[0].init
    assert isinstance(call, N.MethodCall)
    assert call.name == "getName"
    assert isinstance(call.receiver, N.MethodCall)
    assert call.receiver.name == "getFile"


def test_field_access_vs_call():
    f = parse("x = a.field;\ny = a.method();")
    assert isinstance(f.top_level[0].value, N.FieldAccess)
    assert isinstance(f.top_level[1].value, N.MethodCall)


def test_function_declaration():
    f = parse("File fetch(Database db, String key) { return db.get(key); }")
    (fn,) = f.functions
    assert fn.name == "fetch"
    assert [p[1] for p in fn.params] == ["db", "key"]
    assert isinstance(fn.body[0], N.ReturnStmt)


def test_if_else_chain():
    f = parse("if (a) { x(); } else if (b) { y(); } else { z(); }")
    stmt = f.top_level[0]
    assert isinstance(stmt, N.IfStmt)
    nested = stmt.else_body[0]
    assert isinstance(nested, N.IfStmt)
    assert nested.else_body


def test_braceless_bodies():
    f = parse("if (a) x();")
    assert len(f.top_level[0].then_body) == 1


def test_classic_for():
    f = parse("for (int i = 0; i < n; i++) { use(i); }")
    stmt = f.top_level[0]
    assert isinstance(stmt, N.ForStmt)
    assert isinstance(stmt.init, N.VarDecl)
    assert isinstance(stmt.cond, N.Binary)
    assert isinstance(stmt.update, N.ExprStmt)


def test_foreach():
    f = parse("for (File f : files) { use(f); }")
    stmt = f.top_level[0]
    assert isinstance(stmt, N.ForEachStmt)
    assert stmt.name == "f"
    assert stmt.type.name == "File"


def test_compound_assignment_desugars():
    f = parse("x += 1;")
    stmt = f.top_level[0]
    assert isinstance(stmt, N.Assign)
    assert isinstance(stmt.value, N.Binary)
    assert stmt.value.op == "+"


def test_array_indexing_becomes_call():
    f = parse("x = a[0];")
    call = f.top_level[0].value
    assert isinstance(call, N.MethodCall)
    assert call.name == "[]"


def test_precedence():
    f = parse("x = a + b * c == d;")
    eq = f.top_level[0].value
    assert eq.op == "=="
    plus = eq.left
    assert plus.op == "+"
    assert plus.right.op == "*"


def test_literals():
    f = parse('x = "s"; y = 1; z = 2.5; t = true; u = null;')
    values = [s.value for s in f.top_level]
    assert [v.value for v in values] == ["s", 1, 2.5, True, None]


def test_parse_error_reports_location():
    with pytest.raises(ParseError) as err:
        parse("int x = ;")
    assert "line 1" in str(err.value)


def test_unclosed_block():
    with pytest.raises(ParseError):
        parse("if (a) { x();")


def test_diamond_operator():
    f = parse("Map<String, File> m = new HashMap<>();")
    assert f.top_level[0].init.type.args == ()
