"""Tests for MiniJava → IR lowering: naming, typing, SSA-lite merges."""

from repro.frontend.minijava import parse_minijava
from repro.frontend.signatures import ApiSignatures, MethodSig
from repro.ir import Call, Const, FieldStore, If, While, iter_calls, iter_instructions


def sigs():
    s = ApiSignatures()
    s.register_all([
        MethodSig("java.util.HashMap", "put", "<1>", ("<0>", "<1>")),
        MethodSig("java.util.HashMap", "get", "<1>", ("<0>",)),
        MethodSig("example.Database", "getFile", "java.io.File"),
        MethodSig("java.io.File", "getName", "java.lang.String"),
        MethodSig("java.util.List", "get", "<0>", ("int",)),
    ])
    return s


def calls_of(prog, fn="main"):
    return [c.method for c in iter_calls(prog.functions[fn])]


def test_method_ids_qualified_by_declared_type():
    prog = parse_minijava(
        'import java.util.HashMap;\n'
        'HashMap<String, File> map = new HashMap<>();\n'
        'map.put("k", "v");\n',
        sigs(),
    )
    assert "java.util.HashMap.put" in calls_of(prog)


def test_chained_call_typed_via_signature_registry():
    prog = parse_minijava(
        'import example.Database;\n'
        'Database db = new Database();\n'
        'String n = db.getFile().getName();\n',
        sigs(),
    )
    assert "example.Database.getFile" in calls_of(prog)
    assert "java.io.File.getName" in calls_of(prog)


def test_generic_return_type_substitution():
    """Map<String, File>.get returns the value type argument."""
    prog = parse_minijava(
        'import java.util.HashMap;\n'
        'import java.io.File;\n'
        'HashMap<String, java.io.File> map = new HashMap<>();\n'
        'String n = map.get("k").getName();\n',
        sigs(),
    )
    assert "java.io.File.getName" in calls_of(prog)


def test_unknown_receiver_type_keeps_bare_name():
    prog = parse_minijava("x = mystery.doIt();", sigs())
    assert "doIt" in calls_of(prog)


def test_statement_call_has_no_ret_var():
    prog = parse_minijava(
        'import java.util.HashMap;\n'
        'HashMap<String, String> m = new HashMap<>();\n'
        'm.put("k", "v");\n',
        sigs(),
    )
    put = next(c for c in iter_calls(prog.functions["main"])
               if c.method.endswith("put"))
    assert put.dst is None


def test_used_call_has_ret_var():
    prog = parse_minijava(
        'import java.util.HashMap;\n'
        'HashMap<String, String> m = new HashMap<>();\n'
        'String v = m.get("k");\n',
        sigs(),
    )
    get = next(c for c in iter_calls(prog.functions["main"])
               if c.method.endswith("get"))
    assert get.dst is not None


def test_branch_merge_creates_phi_assigns():
    prog = parse_minijava(
        'import example.Database;\n'
        'Database db = new Database();\n'
        'File f = db.getFile();\n'
        'if (f == null) { f = db.getFile(); }\n'
        'use(f);\n',
        sigs(),
    )
    body = prog.functions["main"].body
    use = next(c for c in iter_calls(prog.functions["main"]) if c.method == "use")
    # the argument to use() must be a merge variable, not either branch var
    assert use.args[0].name.startswith("f#")


def test_foreach_desugars_to_iterator_protocol():
    prog = parse_minijava(
        'import java.util.List;\n'
        'List<File> files = new ArrayList<>();\n'
        'for (File f : files) { use(f); }\n',
        sigs(),
    )
    methods = calls_of(prog)
    assert any(m.endswith(".iterator") for m in methods)
    assert "java.util.Iterator.hasNext" in methods
    assert "java.util.Iterator.next" in methods


def test_constructor_args_produce_init_call():
    prog = parse_minijava('Thing t = new Thing("a");', sigs())
    assert "Thing.<init>" in calls_of(prog)


def test_field_store_lowered():
    prog = parse_minijava("obj.field = value;", sigs())
    stores = [i for i in iter_instructions(prog.functions["main"].body)
              if isinstance(i, FieldStore)]
    assert len(stores) == 1
    assert stores[0].field == "field"


def test_array_store_and_load():
    prog = parse_minijava("a[0] = x;\ny = a[1];", sigs())
    methods = calls_of(prog)
    assert any("SubscriptStore" in m for m in methods)
    assert any("SubscriptLoad" in m for m in methods)


def test_functions_lowered_separately():
    prog = parse_minijava(
        "File fetch(Database db) { return db.getFile(); }\n"
        "use(1);\n",
        sigs(),
    )
    assert set(prog.functions) == {"fetch", "main"}


def test_arg_types_recorded():
    prog = parse_minijava(
        'import java.util.HashMap;\n'
        'HashMap<String, String> m = new HashMap<>();\n'
        'm.put("k", 1);\n',
        sigs(),
    )
    put = next(c for c in iter_calls(prog.functions["main"])
               if c.method.endswith("put"))
    assert put.arg_types == ("java.lang.String", "int")


def test_while_lowering_structure():
    prog = parse_minijava("while (x) { use(x); }", sigs())
    assert any(isinstance(s, While) for s in prog.functions["main"].body)


def test_literals_become_const_instructions():
    prog = parse_minijava('x = "hello";', sigs())
    consts = [i for i in iter_instructions(prog.functions["main"].body)
              if isinstance(i, Const)]
    assert consts[0].value == "hello"
    assert consts[0].type_name == "java.lang.String"
