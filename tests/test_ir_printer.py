"""Golden-ish tests for the IR pretty printer."""

from repro.ir import FunctionBuilder, ProgramBuilder, format_function, format_program


def test_format_function_straight_line():
    b = FunctionBuilder("main")
    m = b.alloc("HashMap")
    k = b.const("key")
    b.call("java.util.HashMap.put", receiver=m, args=[k, k], returns=False)
    text = format_function(b.finish())
    assert text.splitlines()[0] == "func main():"
    assert "new HashMap" in text
    assert "const 'key'" in text
    assert "java.util.HashMap.put" in text


def test_format_function_nested():
    b = FunctionBuilder("f", params=["p"])
    c = b.const(True)
    with b.if_(c) as node:
        b.alloc("A")
    with b.else_(node):
        with b.while_(c):
            b.alloc("B")
    text = format_function(b.finish())
    lines = text.splitlines()
    assert lines[0] == "func f(%p):"
    assert any(line.startswith("  if") for line in lines)
    assert any(line.startswith("  else:") for line in lines)
    assert any(line.startswith("    while") for line in lines)
    assert any(line.startswith("      ") for line in lines)  # B is doubly nested


def test_format_program_entry_first():
    pb = ProgramBuilder()
    pb.add(pb.function("zzz").finish())
    pb.add(pb.function("main").finish())
    text = format_program(pb.finish())
    assert text.index("func main") < text.index("func zzz")
