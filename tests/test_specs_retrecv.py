"""Tests for the RetRecv extension pattern."""

import pytest

from repro.events import RET, HistoryBuilder, build_event_graph
from repro.ir import ProgramBuilder, Var
from repro.pointsto import analyze
from repro.specs import RetRecv, SpecSet
from repro.specs.matching import find_retrecv_matches, induced_edges
from repro.specs.serialize import spec_from_dict, spec_to_dict


def _graph(program, specs=None):
    res = analyze(program, specs=specs)
    return build_event_graph(HistoryBuilder(program, res).build())


def _builder_program(chained=True):
    pb = ProgramBuilder()
    b = pb.function("main")
    sb = b.alloc("StringBuilder")
    a = b.const("a")
    r1 = b.call("StringBuilder.append", receiver=sb, args=[a])
    if chained:
        c = b.const("b")
        b.call("StringBuilder.append", receiver=r1, args=[c], returns=False)
    pb.add(b.finish())
    return pb.finish()


def test_single_site_matches_found():
    g = _graph(_builder_program())
    matches = find_retrecv_matches(g)
    specs = {m.spec for m in matches}
    assert RetRecv("StringBuilder.append") in specs


def test_match_requires_used_return():
    pb = ProgramBuilder()
    b = pb.function("main")
    sb = b.alloc("StringBuilder")
    a = b.const("a")
    b.call("StringBuilder.append", receiver=sb, args=[a], returns=False)
    pb.add(b.finish())
    g = _graph(pb.finish())
    assert find_retrecv_matches(g) == []


def test_induced_edge_connects_receiver_alloc_to_return_use():
    g = _graph(_builder_program())
    match = next(m for m in find_retrecv_matches(g)
                 if m.m1.instr.dst is not None)
    edges = induced_edges(match, g)
    assert len(edges) == 1
    ((e1, e2),) = edges
    assert e1.site.method_id == "new:StringBuilder" and e1.pos == RET
    assert e2.site.method_id == "StringBuilder.append" and e2.pos == 0


def test_solver_retrecv_aliases_receiver_and_return():
    program = _builder_program(chained=False)
    specs = SpecSet([RetRecv("StringBuilder.append")])
    plain = analyze(program)
    aware = analyze(program, specs=specs)
    site = plain.api_sites[0]
    assert not plain.events_may_alias(site, RET, site, 0)
    site2 = aware.api_sites[0]
    assert aware.events_may_alias(site2, RET, site2, 0)


def test_retrecv_merges_chain_histories():
    """With the spec, the chained receiver and the builder are one
    object, so the second append lands in the builder's history."""
    program = _builder_program(chained=True)
    specs = SpecSet([RetRecv("StringBuilder.append")])
    g = _graph(program, specs=specs)
    appends = [e for e in g.events
               if e.site.method_id == "StringBuilder.append" and e.pos == 0]
    assert len(appends) == 2
    assert g.may_alias(appends[0], appends[1])


def test_retrecv_serialization_roundtrip():
    spec = RetRecv("java.lang.StringBuilder.append")
    assert spec_from_dict(spec_to_dict(spec)) == spec


def test_retrecv_in_specset_lookups():
    specs = SpecSet([RetRecv("A.b")])
    assert specs.has_retrecv("A.b")
    assert not specs.has_retrecv("A.c")
    assert not specs.has_retsame("A.b")
    assert specs.api_classes() == frozenset({"A"})
