"""Tests for event graphs (paper §3.3, Fig. 3): edges, alloc, val, contexts."""

from repro.events import RET, HistoryBuilder, build_event_graph
from repro.ir import ProgramBuilder, Var
from repro.pointsto import analyze
from repro.pointsto.objects import LitVal
from repro.specs import RetArg, RetSame, SpecSet

GET = "java.util.HashMap.get"
PUT = "java.util.HashMap.put"


def _graph(program, specs=None):
    res = analyze(program, specs=specs)
    return build_event_graph(HistoryBuilder(program, res).build())


def _event(graph, method, pos):
    matches = [e for e in graph.events if e.site.method_id == method and e.pos == pos]
    assert len(matches) == 1, f"expected unique ⟨{method},{pos}⟩, got {matches}"
    return matches[0]


def test_fig3_graph_structure(fig2_program):
    g = _graph(fig2_program)
    put0 = _event(g, PUT, 0)
    get0 = _event(g, GET, 0)
    new_map = _event(g, "new:HashMap", RET)
    assert g.has_edge(new_map, put0)
    assert g.has_edge(put0, get0)
    assert g.has_edge(new_map, get0)  # transitive closure within history
    # no ordering edge between unrelated objects' events
    getfile_ret = _event(g, "SomeApi.getFile", RET)
    assert not g.has_edge(getfile_ret, get0)


def test_fig3_alloc_sets(fig2_program):
    g = _graph(fig2_program)
    e1 = _event(g, "java.io.File.getName", 0)
    get_ret = _event(g, GET, RET)
    assert g.alloc(e1) == frozenset({get_ret})
    assert g.alloc(get_ret) == frozenset({get_ret})
    assert g.may_alias(e1, get_ret)


def test_fig3_edge_l_only_with_specs(fig2_program):
    specs = SpecSet([RetSame(GET), RetArg(GET, PUT, 2)])
    g_plain = _graph(fig2_program)
    g_spec = _graph(fig2_program, specs=specs)
    gf = ("SomeApi.getFile", RET)
    gn = ("java.io.File.getName", 0)
    assert not g_plain.has_edge(_event(g_plain, *gf), _event(g_plain, *gn))
    assert g_spec.has_edge(_event(g_spec, *gf), _event(g_spec, *gn))


def test_val_of_literal_and_api_events(fig2_program):
    g = _graph(fig2_program)
    put1 = _event(g, PUT, 1)
    assert g.val(put1) == frozenset({LitVal("key")})
    # API return: val is empty (we do not know what it returns)
    get_ret = _event(g, GET, RET)
    assert g.val(get_ret) == frozenset()
    # receiver of put: allocated object value (an AllocVal)
    put0 = _event(g, PUT, 0)
    (v,) = g.val(put0)
    assert type(v).__name__ == "AllocVal"


def test_contexts_include_trivial_and_incident_paths(fig2_program):
    g = _graph(fig2_program)
    e1 = _event(g, "java.io.File.getName", 0)
    ctx = g.contexts(e1, k=2)
    get_ret = _event(g, GET, RET)
    assert (e1,) in ctx
    assert (get_ret, e1) in ctx
    assert all(len(p) <= 2 for p in ctx)
    assert all(e1 in p for p in ctx)


def test_contexts_k3_spans_two_edges(fig2_program):
    g = _graph(fig2_program)
    put0 = _event(g, PUT, 0)
    ctx3 = g.contexts(put0, k=3)
    new_map = _event(g, "new:HashMap", RET)
    get0 = _event(g, GET, 0)
    assert (new_map, put0, get0) in ctx3


def test_inconsistent_order_drops_edge():
    """If two histories order a pair of events differently, no edge."""
    pb = ProgramBuilder()
    b = pb.function("main")
    api = b.alloc("Api")
    obj = b.call("Api.make", receiver=api, dst=Var("o"))
    cond = b.const(True)
    with b.if_(cond) as node:
        b.call("Lib.a", receiver=obj, returns=False)
        b.call("Lib.z", receiver=obj, returns=False)
    with b.else_(node):
        b.call("Lib.z", receiver=obj, returns=False)
        b.call("Lib.a", receiver=obj, returns=False)
    pb.add(b.finish())
    g = _graph(pb.finish())
    # both branches use the same call sites in opposite orders... they are
    # distinct call instructions, so instead check the joint history kept both
    ea = [e for e in g.events if e.site.method_id == "Lib.a"]
    ez = [e for e in g.events if e.site.method_id == "Lib.z"]
    assert len(ea) == 2 and len(ez) == 2


def test_receiver_pairs_orders_earlier_second(fig2_program):
    g = _graph(fig2_program)
    pairs = list(g.receiver_pairs())
    wanted = [
        p for p in pairs
        if p.m1.method_id == GET and p.m2.method_id == PUT
    ]
    assert len(wanted) == 1
    assert wanted[0].distance == 1


def test_receiver_pairs_respects_distance_bound():
    pb = ProgramBuilder()
    b = pb.function("main")
    api = b.alloc("Api")
    obj = b.call("Api.make", receiver=api, dst=Var("o"))
    b.call("Lib.first", receiver=obj, returns=False)
    for _ in range(12):
        b.call("Lib.mid", receiver=obj, returns=False)
    b.call("Lib.last", receiver=obj, returns=False)
    pb.add(b.finish())
    g = _graph(pb.finish())
    pairs = [
        (p.m1.method_id, p.m2.method_id) for p in g.receiver_pairs(max_distance=10)
    ]
    assert ("Lib.last", "Lib.first") not in pairs
    all_pairs = [
        (p.m1.method_id, p.m2.method_id) for p in g.receiver_pairs(max_distance=100)
    ]
    assert ("Lib.last", "Lib.first") in all_pairs


def test_allocation_events(fig2_program):
    g = _graph(fig2_program)
    assert g.is_allocation(_event(g, "new:HashMap", RET))
    assert g.is_allocation(_event(g, GET, RET))
    assert not g.is_allocation(_event(g, PUT, 0))
