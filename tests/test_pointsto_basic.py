"""Tests for the standard Andersen rules (paper Tab. 2, top five rows)."""

from repro.ir import ProgramBuilder, Var
from repro.pointsto import (
    ObjAlloc,
    ObjApiRet,
    ObjLiteral,
    ObjParam,
    PointsToOptions,
    analyze,
)


def _single_fn_program(build):
    pb = ProgramBuilder(source="t.java")
    b = pb.function("main")
    build(b)
    pb.add(b.finish())
    return pb.finish()


def test_alloc_rule():
    prog = _single_fn_program(lambda b: b.alloc("T", dst=Var("x")))
    res = analyze(prog)
    (obj,) = res.var_pts("main", (), Var("x"))
    assert isinstance(obj, ObjAlloc)
    assert obj.alloc.type_name == "T"


def test_assign_rule():
    def build(b):
        x = b.alloc("T")
        b.assign(Var("y"), x)

    res = analyze(_single_fn_program(build))
    assert res.var_pts("main", (), Var("y")) == res._solver.pts_of(
        res._solver.var_node("main", (), Var("y"))
    )
    assert len(res.var_pts("main", (), Var("y"))) == 1


def test_field_write_then_read():
    def build(b):
        box = b.alloc("Box", dst=Var("box"))
        val = b.alloc("V", dst=Var("val"))
        b.field_store(box, "item", val)
        b.field_load(box, "item", dst=Var("out"))

    res = analyze(_single_fn_program(build))
    out = res.var_pts("main", (), Var("out"))
    val = res.var_pts("main", (), Var("val"))
    assert out == val
    assert res.may_alias(out, val)


def test_field_read_before_write_order_independent():
    """Andersen is flow-insensitive over fields: a load textually before
    the store still sees the stored object."""

    def build(b):
        box = b.alloc("Box", dst=Var("box"))
        b.field_load(box, "item", dst=Var("out"))
        val = b.alloc("V", dst=Var("val"))
        b.field_store(box, "item", val)

    res = analyze(_single_fn_program(build))
    assert res.var_pts("main", (), Var("out")) == res.var_pts("main", (), Var("val"))


def test_fields_are_distinct():
    def build(b):
        box = b.alloc("Box", dst=Var("box"))
        a = b.alloc("A", dst=Var("a"))
        z = b.alloc("Z", dst=Var("z"))
        b.field_store(box, "fa", a)
        b.field_store(box, "fz", z)
        b.field_load(box, "fa", dst=Var("outa"))

    res = analyze(_single_fn_program(build))
    outa = res.var_pts("main", (), Var("outa"))
    assert outa == res.var_pts("main", (), Var("a"))
    assert not res.may_alias(outa, res.var_pts("main", (), Var("z")))


def test_api_returns_fresh_object():
    """The deliberate unsound-but-precise assumption of §3.2: API returns
    never alias anything else."""

    def build(b):
        api = b.alloc("Api", dst=Var("api"))
        b.call("Api.get", receiver=api, dst=Var("r1"))
        b.call("Api.get", receiver=api, dst=Var("r2"))

    res = analyze(_single_fn_program(build))
    r1 = res.var_pts("main", (), Var("r1"))
    r2 = res.var_pts("main", (), Var("r2"))
    assert all(isinstance(o, ObjApiRet) for o in r1 | r2)
    assert not res.may_alias(r1, r2)


def test_literals_have_distinct_objects_per_occurrence():
    def build(b):
        b.const("key", dst=Var("k1"))
        b.const("key", dst=Var("k2"))

    res = analyze(_single_fn_program(build))
    (o1,) = res.var_pts("main", (), Var("k1"))
    (o2,) = res.var_pts("main", (), Var("k2"))
    assert isinstance(o1, ObjLiteral) and isinstance(o2, ObjLiteral)
    assert o1 != o2
    assert o1.value == o2.value == "key"


def test_interprocedural_param_and_return_flow():
    pb = ProgramBuilder()
    helper = pb.function("identity", params=["p"])
    helper.ret(Var("p"))
    pb.add(helper.finish())

    main = pb.function("main")
    x = main.alloc("T", dst=Var("x"))
    main.call("identity", args=[x], dst=Var("y"))
    pb.add(main.finish())

    res = analyze(pb.finish())
    assert res.var_pts("main", (), Var("y")) == res.var_pts("main", (), Var("x"))


def test_context_sensitivity_separates_call_sites():
    """1-call-site sensitivity keeps two identity() calls apart."""
    pb = ProgramBuilder()
    helper = pb.function("identity", params=["p"])
    helper.ret(Var("p"))
    pb.add(helper.finish())

    main = pb.function("main")
    a = main.alloc("A", dst=Var("a"))
    z = main.alloc("Z", dst=Var("z"))
    main.call("identity", args=[a], dst=Var("ra"))
    main.call("identity", args=[z], dst=Var("rz"))
    pb.add(main.finish())

    res = analyze(pb.finish(), options=PointsToOptions(context_k=1))
    ra = res.var_pts("main", (), Var("ra"))
    rz = res.var_pts("main", (), Var("rz"))
    assert not res.may_alias(ra, rz)

    # context-insensitive merges them
    res0 = analyze(pb.finish(), options=PointsToOptions(context_k=0))
    ra0 = res0.var_pts("main", (), Var("ra"))
    rz0 = res0.var_pts("main", (), Var("rz"))
    assert res0.may_alias(ra0, rz0)


def test_intraprocedural_mode_treats_internal_calls_as_api():
    pb = ProgramBuilder()
    helper = pb.function("identity", params=["p"])
    helper.ret(Var("p"))
    pb.add(helper.finish())
    main = pb.function("main")
    x = main.alloc("T", dst=Var("x"))
    main.call("identity", args=[x], dst=Var("y"))
    pb.add(main.finish())

    res = analyze(pb.finish(), options=PointsToOptions(interprocedural=False))
    y = res.var_pts("main", (), Var("y"))
    assert all(isinstance(o, ObjApiRet) for o in y)


def test_entry_params_get_unknown_objects():
    pb = ProgramBuilder()
    main = pb.function("main", params=["arg"])
    pb.add(main.finish())
    res = analyze(pb.finish())
    (obj,) = res.var_pts("main", (), Var("arg"))
    assert isinstance(obj, ObjParam)


def test_event_pts_positions(fig2_program):
    res = analyze(fig2_program)
    get_site = next(s for s in res.api_sites if s.method_id.endswith(".get"))
    put_site = next(s for s in res.api_sites if s.method_id.endswith(".put"))
    # same receiver
    assert res.events_may_alias(get_site, 0, put_site, 0)
    # under the unaware analysis, get's return aliases nothing
    from repro.events.events import RET

    assert not res.events_may_alias(get_site, RET, put_site, 2)
