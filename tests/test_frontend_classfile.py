"""The JVM classfile frontend: reader, decoder, abstract-stack
lowering, the in-repo assembler, and the corpus quarantine ladder for
hostile ``.class``/``.jar`` inputs."""

import struct

import pytest

from repro.corpus import DEFAULT_SUFFIXES, mine_directory
from repro.frontend.classfile import (
    ClassBuilder,
    MalformedClassfile,
    UnsupportedBytecode,
    decode,
    pack_jar,
    parse_classfile,
    parse_classfile_bytes,
    parse_field_descriptor,
    parse_method_descriptor,
    read_classfile,
)
from repro.frontend.classfile.opcodes import MNEMONIC
from repro.frontend.signatures import ApiSignatures
from repro.ir import Alloc, Assign, Call, Const, FieldLoad, FieldStore
from repro.mining import MiningConfig, MiningEngine
from repro.runtime import (
    MALFORMED_CLASSFILE,
    TAXONOMY,
    UNSUPPORTED_BYTECODE,
    classify_error,
)
from repro.specs.serialize import specs_to_json


def widget_class(name="demo.Widget"):
    """A class exercising the modelled opcode subset end to end."""
    cb = ClassBuilder(name)
    cb.field("cache", "java.util.Map")
    cb.default_init()
    code = cb.method("use", params=("java.util.List",),
                     returns="java.lang.Object")
    code.construct("java.util.HashMap")
    code.astore(2)
    code.aload(2)
    code.ldc_str("k")
    code.aload(1)
    code.iconst(0)
    code.invokeinterface("java.util.List", "get", ("int",),
                         "java.lang.Object")
    code.invokevirtual("java.util.HashMap", "put",
                       ("java.lang.Object", "java.lang.Object"),
                       "java.lang.Object")
    code.pop()
    code.aload(0)
    code.aload(2)
    code.putfield(name, "cache", "java.util.Map")
    code.aload(2)
    code.areturn()
    return cb


def evil_class(name="demo.Evil"):
    """A structurally valid class with an unassigned opcode byte."""
    cb = ClassBuilder(name)
    code = cb.method("boom", returns="void")
    code.raw(0xCB)
    code.return_()
    return cb


def body(program, fn):
    return program.functions[fn].body


# ----------------------------------------------------------------------
# descriptors


def test_method_descriptor_parsing():
    params, returns = parse_method_descriptor(
        "(Ljava/lang/String;I[[JLjava/util/Map;)V")
    assert params == ("java.lang.String", "int", "long[][]",
                      "java.util.Map")
    assert returns == "void"


def test_field_descriptor_parsing():
    assert parse_field_descriptor("[Ljava/lang/Object;") == \
        "java.lang.Object[]"
    assert parse_field_descriptor("D") == "double"


def test_bad_descriptor_is_malformed():
    with pytest.raises(MalformedClassfile):
        parse_method_descriptor("(Q)V")


# ----------------------------------------------------------------------
# reader: assemble → read round trip


def test_reader_round_trip():
    cls = read_classfile(widget_class().build())
    assert cls.name == "demo.Widget"
    assert cls.super_name == "java.lang.Object"
    assert [f.name for f in cls.fields] == ["cache"]
    assert cls.fields[0].type_name == "java.util.Map"
    use = {m.name: m for m in cls.methods}["use"]
    assert use.params == ("java.util.List",)
    assert use.returns == "java.lang.Object"
    assert not use.is_static
    assert use.code is not None and len(use.code.code) > 10


def test_long_constant_burns_two_pool_slots():
    cb = ClassBuilder("demo.Longs")
    code = cb.method("f", returns="void")
    code.ldc_long(1 << 40)
    code.op("pop2")
    code.ldc_str("after")  # interned AFTER the long: index shifted by 2
    code.pop()
    code.return_()
    program = parse_classfile(cb.build())
    consts = [s for s in body(program, "demo.Longs.f")
              if isinstance(s, Const)]
    assert (1 << 40) in [c.value for c in consts]
    assert "after" in [c.value for c in consts]


def test_exception_table_round_trip():
    cb = ClassBuilder("demo.Guarded")
    code = cb.method("go", returns="void")
    code.label("t0").aload(0)
    code.invokevirtual("demo.Guarded", "risky", (), "void")
    code.label("t1").return_()
    code.label("catch")
    code.invokevirtual("java.lang.Exception", "printStackTrace",
                       (), "void")
    code.return_()
    code.handler("t0", "t1", "catch", "java.lang.Exception")
    cls = read_classfile(cb.build())
    handler, = {m.name: m for m in cls.methods}["go"].code.handlers
    assert handler.catch_type == "java.lang.Exception"
    assert handler.start_pc == 0 < handler.handler_pc


# ----------------------------------------------------------------------
# bytecode decoding


def test_decode_switch_padding_and_wide():
    # 0: iconst_0
    # 1: tableswitch — operands start at 2, padded to offset 4;
    #    default/low/high + one jump end at offset 20
    # 20: wide aload 0x0100 (4 bytes)
    # 24: return — the target of both switch edges (1 + 23)
    code = bytes([MNEMONIC["iconst_0"], MNEMONIC["tableswitch"]])
    code += bytes(2)                       # alignment padding
    code += struct.pack(">iii", 23, 0, 0)  # default → 24, low=high=0
    code += struct.pack(">i", 23)          # case 0 → 24
    code += bytes([MNEMONIC["wide"], MNEMONIC["aload"], 0x01, 0x00])
    code += bytes([MNEMONIC["return"]])
    ops = decode(code)
    switch = next(op for op in ops if op.mnemonic == "tableswitch")
    assert switch.offset == 1 and set(switch.targets) == {24}
    wide = next(op for op in ops if op.mnemonic == "wide.aload")
    assert wide.offset == 20 and wide.operands == (0x0100,)
    assert ops[-1].mnemonic == "return" and ops[-1].offset == 24


def test_decode_rejects_unknown_opcode():
    with pytest.raises(UnsupportedBytecode) as exc:
        decode(bytes([0xCB]))
    assert exc.value.kind == UNSUPPORTED_BYTECODE
    assert exc.value.opcode == 0xCB


def test_decode_rejects_branch_into_operand_bytes():
    # goto +1 jumps into its own operand: not an instruction boundary
    with pytest.raises(MalformedClassfile):
        decode(bytes([MNEMONIC["goto"], 0x00, 0x01,
                      MNEMONIC["return"]]))


def test_decode_rejects_truncated_operands():
    with pytest.raises(MalformedClassfile):
        decode(bytes([MNEMONIC["invokevirtual"], 0x00]))


# ----------------------------------------------------------------------
# lowering


def test_lowering_models_the_aliasing_subset():
    program = parse_classfile(widget_class().build())
    assert program.language == "classfile"
    use = body(program, "demo.Widget.use")
    allocs = [s for s in use if isinstance(s, Alloc)]
    assert [a.type_name for a in allocs] == ["java.util.HashMap"]
    calls = [s for s in use if isinstance(s, Call)]
    methods = [c.method for c in calls]
    assert "java.util.List.get" in methods
    assert "java.util.HashMap.put" in methods
    # receiver/arg wiring: put's receiver is the HashMap, its second
    # argument is List.get's result
    put = next(c for c in calls if c.method.endswith("put"))
    get = next(c for c in calls if c.method.endswith("get"))
    # put's receiver is the astore'd local, aliased to the allocation
    # through an Assign (sound under the flow-insensitive solver)
    assigns = [s for s in use if isinstance(s, Assign)]
    assert any(a.dst == put.receiver and a.src == allocs[0].dst
               for a in assigns)
    assert put.args[1] == get.dst
    stores = [s for s in use if isinstance(s, FieldStore)]
    assert [(s.field,) for s in stores] == [("cache",)]


def test_lowering_synthesises_a_library_harness():
    program = parse_classfile(widget_class().build())
    assert program.entry == "main"
    harness = [s for s in body(program, "main") if isinstance(s, Call)]
    called = {c.method for c in harness}
    assert {"demo.Widget.<init>", "demo.Widget.use"} <= called
    # instance methods are driven through one shared allocation
    alloc, = (s for s in body(program, "main") if isinstance(s, Alloc))
    assert all(c.receiver == alloc.dst for c in harness)


def test_dup_duplicates_the_same_reference():
    cb = ClassBuilder("demo.Dup")
    code = cb.method("f", returns="void")
    code.new_("demo.Box")
    code.dup()
    code.aconst_null()
    code.putfield("demo.Box", "a", "java.lang.Object")
    code.aconst_null()
    code.putfield("demo.Box", "b", "java.lang.Object")
    code.return_()
    program = parse_classfile(cb.build())
    stmts = body(program, "demo.Dup.f")
    alloc, = (s for s in stmts if isinstance(s, Alloc))
    stores = [s for s in stmts if isinstance(s, FieldStore)]
    assert [s.field for s in stores] == ["a", "b"]
    assert all(s.obj == alloc.dst for s in stores)


def test_branch_join_merges_stacks_with_assigns():
    cb = ClassBuilder("demo.Pick")
    code = cb.method("pick", params=("java.lang.Object",),
                     returns="java.lang.Object")
    code.aload(1)
    code.ifnull("else")
    code.construct("demo.A")
    code.goto_("done")
    code.label("else")
    code.construct("demo.B")
    code.label("done")
    code.areturn()
    program = parse_classfile(cb.build())
    stmts = body(program, "demo.Pick.pick")
    allocs = [s.dst for s in stmts if isinstance(s, Alloc)]
    assigns = [s for s in stmts if isinstance(s, Assign)]
    ret, = (s for s in stmts if type(s).__name__ == "Return")
    merged = ret.value
    assert {a.src for a in assigns if a.dst == merged} == set(allocs)


def test_unmodelled_opcodes_degrade_to_havoc_not_failure():
    cb = ClassBuilder("demo.Math")
    code = cb.method("f", returns="int", params=("int", "int"))
    code.op("iload_1")
    code.op("iload_2")
    code.op("iadd")
    code.op("i2l")
    code.op("l2i")
    code.op("ireturn")
    program = parse_classfile(cb.build())
    assert "demo.Math.f" in program.functions


def test_stack_underflow_is_contained():
    cb = ClassBuilder("demo.Under")
    code = cb.method("f", returns="void")
    code.pop()  # nothing on the stack
    code.areturn()  # returns a havoc value
    program = parse_classfile(cb.build())
    assert "demo.Under.f" in program.functions


def test_exception_handler_block_gets_the_thrown_value():
    cb = ClassBuilder("demo.Guarded")
    code = cb.method("go", returns="void")
    code.label("t0").aload(0)
    code.invokevirtual("demo.Guarded", "risky", (), "void")
    code.label("t1").return_()
    code.label("catch").astore(1)
    code.aload(1)
    code.invokevirtual("java.lang.Exception", "printStackTrace",
                       (), "void")
    code.return_()
    code.handler("t0", "t1", "catch", "java.lang.Exception")
    program = parse_classfile(cb.build())
    calls = [s for s in body(program, "demo.Guarded.go")
             if isinstance(s, Call)]
    assert "java.lang.Exception.printStackTrace" in \
        [c.method for c in calls]


def test_signatures_are_registered_from_descriptors():
    sigs = ApiSignatures()
    parse_classfile(widget_class().build(), sigs)
    # the class's own declared method
    own = sigs.lookup("demo.Widget", "use")
    assert own is not None and own.returns == "java.lang.Object"
    # a method referenced only through the constant pool
    ref = sigs.lookup("java.util.HashMap", "put")
    assert ref is not None
    assert ref.params == ("java.lang.Object", "java.lang.Object")


def test_arrays_lower_to_bracket_field_accesses():
    cb = ClassBuilder("demo.Arr")
    code = cb.method("f", returns="java.lang.Object")
    code.iconst(3)
    code.op("anewarray",
            struct.pack(">H", cb.pool.class_("java.lang.Object")))
    code.astore(1)
    code.aload(1)
    code.iconst(0)
    code.op("aaload")
    code.areturn()
    program = parse_classfile(cb.build())
    stmts = body(program, "demo.Arr.f")
    alloc, = (s for s in stmts if isinstance(s, Alloc))
    assert alloc.type_name == "java.lang.Object[]"
    load, = (s for s in stmts if isinstance(s, FieldLoad))
    assert load.field == "[]"


# ----------------------------------------------------------------------
# hostile inputs: the quarantine ladder


def test_new_labels_are_in_the_taxonomy():
    assert MALFORMED_CLASSFILE in TAXONOMY
    assert UNSUPPORTED_BYTECODE in TAXONOMY


def test_bad_magic_is_malformed():
    data = widget_class().build()
    with pytest.raises(MalformedClassfile) as exc:
        parse_classfile_bytes(b"NOPE" + data[4:])
    assert classify_error(exc.value) == MALFORMED_CLASSFILE


def test_truncated_constant_pool_is_malformed():
    data = widget_class().build()
    for cut in (0, 4, 9, 20, len(data) // 2, len(data) - 1):
        with pytest.raises(MalformedClassfile):
            parse_classfile_bytes(data[:cut])


def test_random_garbage_never_escapes_the_typed_errors():
    import random

    rng = random.Random(1234)
    data = widget_class().build()
    for _ in range(50):
        blob = bytearray(data)
        for _ in range(8):
            blob[rng.randrange(len(blob))] = rng.randrange(256)
        try:
            parse_classfile(bytes(blob))
        except (MalformedClassfile, UnsupportedBytecode):
            pass  # anything else propagates and fails the test


def test_quarantine_ladder_in_directory_mining(tmp_path):
    good = widget_class().build()
    (tmp_path / "Widget.class").write_bytes(good)
    (tmp_path / "magic.class").write_bytes(b"NOPE" + good[4:])
    (tmp_path / "trunc.class").write_bytes(good[:25])
    (tmp_path / "evil.class").write_bytes(evil_class().build())
    (tmp_path / "binary.java").write_bytes(b"\xff\xfe\x00junk")
    report = mine_directory(tmp_path)
    assert report.n_parsed == 1
    assert report.skipped_by_kind() == {
        MALFORMED_CLASSFILE: 2,
        UNSUPPORTED_BYTECODE: 1,
        "ReadFailure": 1,
    }


def test_jar_mixes_valid_and_hostile_members(tmp_path):
    good = widget_class().build()
    pack_jar(tmp_path / "lib.jar",
             {"demo.Widget": good, "demo.Evil": evil_class().build()},
             extra={"broken/Trunc.class": good[:30],
                    "notes.txt": b"not bytecode"})
    report = mine_directory(tmp_path)
    assert report.n_parsed == 1  # the valid member still mines
    assert report.programs[0].source.endswith("!demo/Widget.class")
    kinds = report.skipped_by_kind()
    assert kinds[MALFORMED_CLASSFILE] == 1
    assert kinds[UNSUPPORTED_BYTECODE] == 1
    skipped_paths = [str(p) for p, _ in report.skipped]
    assert any(p.endswith("!broken/Trunc.class") for p in skipped_paths)


def test_unreadable_jar_quarantines_the_archive(tmp_path):
    (tmp_path / "bad.jar").write_bytes(b"PK\x03\x04 not a real zip")
    report = mine_directory(tmp_path)
    assert report.n_parsed == 0
    assert report.skipped_by_kind() == {MALFORMED_CLASSFILE: 1}


def test_default_suffixes_cover_binary_inputs():
    assert DEFAULT_SUFFIXES == (".java", ".py", ".class", ".jar")


# ----------------------------------------------------------------------
# determinism and caching over compiled corpora


def classfile_corpus(tmp_path, n=6):
    for i in range(n):
        cb = ClassBuilder(f"demo.Widget{i}")
        cb.default_init()
        code = cb.method("go", returns="void")
        code.construct("java.util.ArrayList")
        code.astore(1)
        code.aload(1)
        code.ldc_str(f"item{i}")
        code.invokevirtual("java.util.ArrayList", "add",
                           ("java.lang.Object",), "boolean")
        code.pop()
        code.aload(1)
        code.invokevirtual("java.util.ArrayList", "iterator", (),
                           "java.util.Iterator")
        code.astore(2)
        code.aload(2)
        code.invokeinterface("java.util.Iterator", "next", (),
                             "java.lang.Object")
        code.pop()
        code.return_()
        (tmp_path / f"Widget{i}.class").write_bytes(cb.build())
    return mine_directory(tmp_path).programs


def test_jobs_do_not_change_classfile_specs(tmp_path):
    programs = classfile_corpus(tmp_path)
    assert len(programs) == 6
    seq = MiningEngine(mining=MiningConfig(jobs=1)).learn(programs)
    par = MiningEngine(mining=MiningConfig(jobs=4)).learn(programs)
    assert specs_to_json(seq.specs, seq.scores) == \
        specs_to_json(par.specs, par.scores)


def test_warm_cache_covers_classfile_programs(tmp_path):
    corpus = tmp_path / "corpus"
    corpus.mkdir()
    programs = classfile_corpus(corpus)
    cache = MiningConfig(cache_dir=str(tmp_path / "cache"))
    cold = MiningEngine(mining=cache).learn(programs)
    assert cold.mining.n_cached == 0
    warm = MiningEngine(mining=cache).learn(programs)
    assert warm.mining.n_cached == len(programs)
    assert specs_to_json(cold.specs, cold.scores) == \
        specs_to_json(warm.specs, warm.scores)
