"""Tests for ghost fields: ReadGh/WriteGh and the GhostR/GhostW rules."""

from repro.ir import ProgramBuilder, Var
from repro.pointsto import (
    BOTTOM,
    EXACT,
    TOP,
    GhostField,
    ObjGhost,
    PointsToOptions,
    analyze,
)
from repro.pointsto.ghost import ArgValues, ghost_reads, ghost_writes
from repro.pointsto.objects import LitVal, ObjAlloc
from repro.ir.instructions import Alloc
from repro.specs import RetArg, RetSame, SpecSet

GET = "java.util.HashMap.get"
PUT = "java.util.HashMap.put"
SPECS = SpecSet([RetSame(GET), RetArg(GET, PUT, 2)])


# ----------------------------------------------------------------------
# unit level: ReadGh / WriteGh


def known(*values):
    return ArgValues(frozenset(LitVal(v) for v in values), unknown=False)


UNKNOWN = ArgValues(frozenset(), unknown=True)


def test_ghost_reads_without_spec_is_empty():
    fields, eligible = ghost_reads("Other.get", [known("k")], SPECS, False)
    assert fields == set() and eligible == set()


def test_ghost_reads_exact_name():
    fields, eligible = ghost_reads(GET, [known("k")], SPECS, False)
    assert fields == {GhostField(GET, (LitVal("k"),))}
    assert eligible == fields


def test_ghost_reads_multiple_values_fan_out():
    fields, _ = ghost_reads(GET, [known("a", "b")], SPECS, False)
    assert len(fields) == 2


def test_ghost_reads_unknown_key_without_coverage_reads_nothing():
    fields, _ = ghost_reads(GET, [UNKNOWN], SPECS, False)
    assert fields == set()


def test_ghost_reads_unknown_key_with_coverage_reads_bottom():
    fields, eligible = ghost_reads(GET, [UNKNOWN], SPECS, True)
    assert fields == {GhostField(GET, kind=BOTTOM)}
    assert eligible == fields  # App. A: z allocated for every f except ⊤


def test_ghost_reads_known_key_with_coverage_adds_top():
    fields, eligible = ghost_reads(GET, [known("k")], SPECS, True)
    assert GhostField(GET, kind=TOP) in fields
    assert GhostField(GET, (LitVal("k"),)) in fields
    assert GhostField(GET, kind=TOP) not in eligible


def test_ghost_writes_exact():
    alloc = Alloc(Var("o"), "File")
    stored = frozenset({ObjAlloc(alloc)})
    writes = ghost_writes(PUT, [known("k"), UNKNOWN], [frozenset(), stored],
                          SPECS, False)
    assert writes == {(ObjAlloc(alloc), GhostField(GET, (LitVal("k"),)))}


def test_ghost_writes_unknown_key_without_coverage_writes_nothing():
    alloc = Alloc(Var("o"), "File")
    stored = frozenset({ObjAlloc(alloc)})
    writes = ghost_writes(PUT, [UNKNOWN, UNKNOWN], [frozenset(), stored],
                          SPECS, False)
    assert writes == set()


def test_ghost_writes_unknown_key_with_coverage_writes_top_and_bottom():
    alloc = Alloc(Var("o"), "File")
    stored = frozenset({ObjAlloc(alloc)})
    writes = ghost_writes(PUT, [UNKNOWN, UNKNOWN], [frozenset(), stored],
                          SPECS, True)
    kinds = {gf.kind for _, gf in writes}
    assert kinds == {TOP, BOTTOM}


def test_ghost_writes_known_key_with_coverage_adds_bottom():
    alloc = Alloc(Var("o"), "File")
    stored = frozenset({ObjAlloc(alloc)})
    writes = ghost_writes(PUT, [known("k"), UNKNOWN], [frozenset(), stored],
                          SPECS, True)
    kinds = {gf.kind for _, gf in writes}
    assert kinds == {EXACT, BOTTOM}


# ----------------------------------------------------------------------
# analysis level: GhostW / GhostR deduction rules


def _map_program(*, same_key: bool, with_put: bool = True):
    pb = ProgramBuilder()
    b = pb.function("main")
    m = b.alloc("HashMap")
    if with_put:
        k1 = b.const("key")
        v = b.alloc("File", dst=Var("stored"))
        b.call(PUT, receiver=m, args=[k1, v], returns=False)
    k2 = b.const("key" if same_key else "other")
    b.call(GET, receiver=m, args=[k2], dst=Var("got"))
    pb.add(b.finish())
    return pb.finish()


def test_retarg_flows_stored_object_to_get():
    res = analyze(_map_program(same_key=True), specs=SPECS)
    got = res.var_pts("main", (), Var("got"))
    stored = res.var_pts("main", (), Var("stored"))
    assert res.may_alias(got, stored)


def test_different_key_does_not_alias():
    res = analyze(_map_program(same_key=False), specs=SPECS)
    got = res.var_pts("main", (), Var("got"))
    stored = res.var_pts("main", (), Var("stored"))
    assert not res.may_alias(got, stored)


def test_retsame_allocates_ghost_for_unwritten_field():
    """Two get("k") calls with no put must still alias (RetSame)."""
    pb = ProgramBuilder()
    b = pb.function("main")
    m = b.alloc("HashMap")
    ka = b.const("k")
    b.call(GET, receiver=m, args=[ka], dst=Var("r1"))
    kb = b.const("k")
    b.call(GET, receiver=m, args=[kb], dst=Var("r2"))
    pb.add(b.finish())
    res = analyze(pb.finish(), specs=SPECS)
    r1 = res.var_pts("main", (), Var("r1"))
    r2 = res.var_pts("main", (), Var("r2"))
    assert res.may_alias(r1, r2)
    assert any(isinstance(o, ObjGhost) for o in r1 & r2)
    assert res.num_ghost_objects >= 1


def test_retsame_different_keys_get_different_ghosts():
    pb = ProgramBuilder()
    b = pb.function("main")
    m = b.alloc("HashMap")
    ka = b.const("k1")
    b.call(GET, receiver=m, args=[ka], dst=Var("r1"))
    kb = b.const("k2")
    b.call(GET, receiver=m, args=[kb], dst=Var("r2"))
    pb.add(b.finish())
    res = analyze(pb.finish(), specs=SPECS)
    assert not res.may_alias(
        res.var_pts("main", (), Var("r1")), res.var_pts("main", (), Var("r2"))
    )


def test_no_ghost_alloc_when_field_written():
    res = analyze(_map_program(same_key=True), specs=SPECS)
    got = res.var_pts("main", (), Var("got"))
    assert not any(isinstance(o, ObjGhost) for o in got)


def test_empty_specs_equals_baseline():
    prog = _map_program(same_key=True)
    res_none = analyze(prog)
    res_empty = analyze(prog, specs=SpecSet())
    got_n = res_none.var_pts("main", (), Var("got"))
    got_e = res_empty.var_pts("main", (), Var("got"))
    assert got_n == got_e


# ----------------------------------------------------------------------
# §6.4 coverage mode (Fig. 6 scenarios)


def _fig6a_program():
    """map.put(api.foo(), obj); map.get("k1"); map.get("k2")"""
    pb = ProgramBuilder()
    b = pb.function("main")
    m = b.alloc("HashMap")
    api = b.alloc("Api")
    unknown_key = b.call("Api.foo", receiver=api)
    obj = b.alloc("File", dst=Var("obj"))
    b.call(PUT, receiver=m, args=[unknown_key, obj], returns=False)
    k1 = b.const("k1")
    b.call(GET, receiver=m, args=[k1], dst=Var("g1"))
    k2 = b.const("k2")
    b.call(GET, receiver=m, args=[k2], dst=Var("g2"))
    pb.add(b.finish())
    return pb.finish()


def test_fig6a_unknown_write_coverage_mode():
    """With coverage mode, a put under an unknown key may be returned by
    any get (via ⊤); without it, the write is dropped."""
    prog = _fig6a_program()
    res_cov = analyze(prog, specs=SPECS,
                      options=PointsToOptions(coverage_mode=True))
    obj = res_cov.var_pts("main", (), Var("obj"))
    assert res_cov.may_alias(res_cov.var_pts("main", (), Var("g1")), obj)
    assert res_cov.may_alias(res_cov.var_pts("main", (), Var("g2")), obj)

    res_plain = analyze(prog, specs=SPECS)
    assert not res_plain.may_alias(
        res_plain.var_pts("main", (), Var("g1")), obj
    )


def test_fig6a_without_put_gets_do_not_alias():
    """App. A: no z allocated for ⊤, so the two gets stay apart when the
    put is missing."""
    pb = ProgramBuilder()
    b = pb.function("main")
    m = b.alloc("HashMap")
    k1 = b.const("k1")
    b.call(GET, receiver=m, args=[k1], dst=Var("g1"))
    k2 = b.const("k2")
    b.call(GET, receiver=m, args=[k2], dst=Var("g2"))
    pb.add(b.finish())
    res = analyze(pb.finish(), specs=SPECS,
                  options=PointsToOptions(coverage_mode=True))
    assert not res.may_alias(
        res.var_pts("main", (), Var("g1")), res.var_pts("main", (), Var("g2"))
    )


def test_fig6b_unknown_read_coverage_mode():
    """map.put("k", obj); map.get(api.foo()); map.get("k") — both gets
    may return obj in coverage mode (⊥ read resp. exact read)."""
    pb = ProgramBuilder()
    b = pb.function("main")
    m = b.alloc("HashMap")
    k = b.const("k")
    obj = b.alloc("File", dst=Var("obj"))
    b.call(PUT, receiver=m, args=[k, obj], returns=False)
    api = b.alloc("Api")
    unknown_key = b.call("Api.foo", receiver=api)
    b.call(GET, receiver=m, args=[unknown_key], dst=Var("g1"))
    k2 = b.const("k")
    b.call(GET, receiver=m, args=[k2], dst=Var("g2"))
    pb.add(b.finish())
    res = analyze(pb.finish(), specs=SPECS,
                  options=PointsToOptions(coverage_mode=True))
    obj_pts = res.var_pts("main", (), Var("obj"))
    assert res.may_alias(res.var_pts("main", (), Var("g1")), obj_pts)
    assert res.may_alias(res.var_pts("main", (), Var("g2")), obj_pts)
