"""Property tests on solver determinism/idempotence and serialization."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.pointsto import analyze
from repro.specs import RetArg, RetRecv, RetSame, SpecSet
from repro.specs.serialize import specs_from_json, specs_to_json
from tests.test_property_based import small_programs


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(small_programs())
def test_solver_is_deterministic(program):
    """Two runs over the same program agree on every points-to set."""
    r1 = analyze(program)
    r2 = analyze(program)
    assert len(r1.api_sites) == len(r2.api_sites)
    for s1, s2 in zip(r1.api_sites, r2.api_sites):
        assert s1.method_id == s2.method_id
        for pos in (0, 1, "ret"):
            assert {repr(o) for o in r1.event_pts(s1, pos)} == \
                   {repr(o) for o in r2.event_pts(s2, pos)}


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(small_programs())
def test_specs_only_grow_alias_relations(program):
    """The augmented analysis is a refinement-in-coverage: every baseline
    may-alias relation between site returns survives adding specs."""
    specs = SpecSet([
        RetSame("B.get"),
        RetArg("B.get", "B.put", 2),
        RetRecv("A.use"),
    ])
    base = analyze(program)
    aug = analyze(program, specs=specs)
    sites_b = base.api_sites
    sites_a = aug.api_sites
    for i in range(len(sites_b)):
        for j in range(i):
            if base.events_may_alias(sites_b[i], "ret", sites_b[j], "ret"):
                assert aug.events_may_alias(sites_a[i], "ret",
                                            sites_a[j], "ret")


_spec = st.one_of(
    st.builds(RetSame, st.text(
        alphabet="abcDEF.", min_size=1, max_size=20).filter(
        lambda s: not s.startswith(".") and not s.endswith("."))),
    st.builds(RetRecv, st.sampled_from(["A.m", "B.n", "pkg.Cls.meth"])),
    st.builds(RetArg, st.sampled_from(["A.get", "B.load"]),
              st.sampled_from(["A.put", "B.store"]),
              st.integers(min_value=1, max_value=9)),
)


@given(st.lists(_spec, max_size=20),
       st.dictionaries(st.sampled_from([RetSame("A.m"), RetRecv("A.m")]),
                       st.floats(min_value=0, max_value=1), max_size=2))
def test_serialization_roundtrip_property(specs, scores):
    spec_set = SpecSet(specs)
    text = specs_to_json(spec_set, scores)
    loaded, loaded_scores = specs_from_json(text)
    assert set(loaded) == set(spec_set)
    for spec, score in loaded_scores.items():
        assert abs(scores[spec] - score) < 1e-5
