"""Context-sensitivity of call sites in histories (paper §3.1: a call
site comprises the statement *and its calling context*)."""

from repro.events import RET, HistoryBuilder, build_event_graph
from repro.ir import ProgramBuilder, Var
from repro.pointsto import PointsToOptions, analyze


def _two_callers_program():
    """helper() contains one API call; main calls helper twice with
    different objects."""
    pb = ProgramBuilder()
    helper = pb.function("helper", params=["p"])
    helper.call("Lib.touch", receiver=Var("p"), returns=False)
    pb.add(helper.finish())
    main = pb.function("main")
    a = main.alloc("A", dst=Var("a"))
    z = main.alloc("Z", dst=Var("z"))
    main.call("helper", args=[a], returns=False)
    main.call("helper", args=[z], returns=False)
    pb.add(main.finish())
    return pb.finish()


def _graph(program, k=1):
    res = analyze(program, options=PointsToOptions(context_k=k))
    return build_event_graph(HistoryBuilder(program, res).build())


def test_context_sensitive_sites_are_distinct():
    """With k=1 the single Lib.touch statement yields two call sites,
    one per calling context — A's and Z's histories stay separate."""
    g = _graph(_two_callers_program(), k=1)
    touch_events = [e for e in g.events if e.site.method_id == "Lib.touch"]
    assert len(touch_events) == 2
    assert len({e.site for e in touch_events}) == 2
    e1, e2 = touch_events
    assert not g.may_alias(e1, e2)


def test_context_insensitive_sites_merge():
    """With k=0 both calls collapse onto one site, and the receiver
    event belongs to both objects' histories."""
    g = _graph(_two_callers_program(), k=0)
    touch_events = [e for e in g.events if e.site.method_id == "Lib.touch"
                    and e.pos == 0]
    assert len({e.site for e in touch_events}) == 1


def test_context_depth_two():
    pb = ProgramBuilder()
    inner = pb.function("inner", params=["x"])
    inner.call("Lib.deep", receiver=Var("x"), returns=False)
    pb.add(inner.finish())
    outer = pb.function("outer", params=["y"])
    outer.call("inner", args=[Var("y")], returns=False)
    pb.add(outer.finish())
    main = pb.function("main")
    a = main.alloc("A")
    z = main.alloc("Z")
    main.call("outer", args=[a], returns=False)
    main.call("outer", args=[z], returns=False)
    pb.add(main.finish())
    program = pb.finish()

    # k=1: the two outer() call sites collapse inside inner (the last
    # call is always inner's single call site) — one Lib.deep site
    g1 = _graph(program, k=1)
    sites1 = {e.site for e in g1.events if e.site.method_id == "Lib.deep"}
    assert len(sites1) == 1

    # k=2: the full chain distinguishes the two paths
    g2 = _graph(program, k=2)
    sites2 = {e.site for e in g2.events if e.site.method_id == "Lib.deep"}
    assert len(sites2) == 2
