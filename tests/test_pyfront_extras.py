"""Edge cases of the Python frontend: imports, modules, odd constructs."""

from repro.frontend.pyfront import parse_python
from repro.frontend.signatures import ApiSignatures, MethodSig
from repro.ir import Call, iter_calls, iter_instructions


def calls_of(prog, fn="main"):
    return [c.method for c in iter_calls(prog.functions[fn])]


def _sigs_with_element():
    s = ApiSignatures()
    s.register(MethodSig("xml.etree.ElementTree.Element", "set", "void"))
    s.register(MethodSig("xml.etree.ElementTree", "fromstring",
                         "xml.etree.ElementTree.Element"))
    return s


def test_class_looking_module_component():
    """xml.etree.ElementTree is a module despite the class-looking name —
    the signature registry's prefix knowledge resolves it."""
    prog = parse_python(
        "import xml.etree.ElementTree\n"
        'el = xml.etree.ElementTree.fromstring("<a/>")\n'
        'el.set("k", "v")\n',
        signatures=_sigs_with_element(),
    )
    methods = calls_of(prog)
    assert "xml.etree.ElementTree.fromstring" in methods
    assert "xml.etree.ElementTree.Element.set" in methods


def test_dotted_import_binds_top_name():
    prog = parse_python(
        "import numpy.random\n"
        "r = numpy.random.RandomState()\n"
        "s = r.get_state()\n"
    )
    assert "numpy.random.RandomState.get_state" in calls_of(prog)


def test_import_as_overrides():
    prog = parse_python("import numpy.random as rnd\nr = rnd.RandomState()\n")
    allocs = [i for i in iter_instructions(prog.functions["main"].body)
              if type(i).__name__ == "Alloc"]
    assert any(a.type_name == "numpy.random.RandomState" for a in allocs)


def test_os_environ_is_singleton_per_function():
    prog = parse_python(
        "import os\n"
        'os.environ["A"] = x\n'
        'y = os.environ["A"]\n'
    )
    stores = [c for c in iter_calls(prog.functions["main"])
              if "SubscriptStore" in c.method]
    loads = [c for c in iter_calls(prog.functions["main"])
             if "SubscriptLoad" in c.method]
    assert stores[0].receiver == loads[0].receiver
    assert stores[0].method == "os.environ.SubscriptStore"


def test_augassign_rebinds():
    prog = parse_python("x = 1\nx += 2\nuse(x)\n")
    use = next(c for c in iter_calls(prog.functions["main"])
               if c.method == "use")
    assert use.args[0].name.startswith("x")


def test_tuple_unpack_assigns_all_names():
    prog = parse_python("a, b = pair()\nuse(a)\nuse(b)\n")
    uses = [c for c in iter_calls(prog.functions["main"])
            if c.method == "use"]
    assert len(uses) == 2
    assert uses[0].args[0] != uses[1].args[0]


def test_while_else_and_for_else():
    prog = parse_python(
        "while cond():\n    tick()\nelse:\n    done()\n"
        "for i in items():\n    tock()\nelse:\n    fin()\n"
    )
    methods = calls_of(prog)
    for m in ("tick", "done", "tock", "fin"):
        assert m in methods


def test_decorated_function_still_lowered():
    prog = parse_python(
        "@decorator\n"
        "def handler():\n"
        "    return work()\n"
    )
    assert "work" in calls_of(prog, "handler")


def test_nested_function_lowered_separately():
    prog = parse_python(
        "def outer():\n"
        "    def inner():\n"
        "        return deep()\n"
        "    return inner\n"
    )
    assert "inner" in prog.functions
    assert "deep" in calls_of(prog, "inner")


def test_starred_call_args_evaluated():
    prog = parse_python("f(*args, **kw)\n")
    f = next(c for c in iter_calls(prog.functions["main"]) if c.method == "f")
    assert f.nargs == 2  # the starred containers themselves


def test_class_body_methods_collected():
    prog = parse_python(
        "class Service:\n"
        "    def start(self):\n"
        "        boot()\n"
        "    async def poll(self):\n"
        "        check()\n"
    )
    assert "boot" in calls_of(prog, "start")
    assert "check" in calls_of(prog, "poll")


def test_keyword_arguments_appended():
    prog = parse_python("api(1, flag=True)\n")
    call = next(c for c in iter_calls(prog.functions["main"])
                if c.method == "api")
    assert call.nargs == 2


def test_slice_subscript_does_not_crash():
    prog = parse_python("xs = []\nys = xs[1:3]\n")
    assert "main" in prog.functions


def test_conditional_expression_merges():
    prog = parse_python("x = a() if cond else b()\nuse(x)\n")
    use = next(c for c in iter_calls(prog.functions["main"])
               if c.method == "use")
    assert use.args[0].name.startswith("ifexp#")
