"""Tests for the API registry and the corpus generator."""

import pytest

from repro.corpus import (
    CorpusConfig,
    CorpusGenerator,
    java_registry,
    python_registry,
)
from repro.specs import RetArg, RetSame


@pytest.fixture(scope="module")
def jreg():
    return java_registry()


@pytest.fixture(scope="module")
def preg():
    return python_registry()


def test_ground_truth_contains_flagship_specs(jreg):
    truth = jreg.all_true_specs()
    assert RetArg("java.util.HashMap.get", "java.util.HashMap.put", 2) in truth
    assert RetSame("android.view.ViewGroup.findViewById") in truth
    assert RetSame("java.sql.ResultSet.getString") in truth


def test_spurious_class_contributes_no_truth(jreg):
    truth = jreg.all_true_specs()
    assert RetArg("org.antlr.runtime.tree.TreeAdaptor.rulePostProcessing",
                  "org.antlr.runtime.tree.TreeAdaptor.addChild", 2) not in truth


def test_traps_contribute_no_retsame(jreg, preg):
    assert RetSame("java.util.Iterator.next") not in jreg.all_true_specs()
    assert RetSame("List.pop") not in preg.all_true_specs()
    # ... but the LIFO RetArg of pop/append is correct may-aliasing
    assert RetArg("List.pop", "List.append", 1) in preg.all_true_specs()


def test_signatures_cover_all_roles(jreg):
    sigs = jreg.signatures()
    assert sigs.lookup("java.util.HashMap", "put") is not None
    assert sigs.return_type("example.db.Database", "getFile") == "java.io.File"
    # producer construction registered
    assert sigs.return_type("java.sql.Statement", "executeQuery") \
        == "java.sql.ResultSet"


def test_generation_is_deterministic(jreg):
    a = CorpusGenerator(jreg, CorpusConfig(n_files=10, seed=3)).generate()
    b = CorpusGenerator(jreg, CorpusConfig(n_files=10, seed=3)).generate()
    assert [f.text for f in a] == [f.text for f in b]


def test_different_seeds_differ(jreg):
    a = CorpusGenerator(jreg, CorpusConfig(n_files=10, seed=3)).generate()
    b = CorpusGenerator(jreg, CorpusConfig(n_files=10, seed=4)).generate()
    assert [f.text for f in a] != [f.text for f in b]


def test_all_java_files_parse(jreg):
    gen = CorpusGenerator(jreg, CorpusConfig(n_files=40, seed=9))
    programs = gen.programs()
    assert len(programs) == 40
    assert all(p.language == "minijava" for p in programs)


def test_all_python_files_parse(preg):
    gen = CorpusGenerator(preg, CorpusConfig(n_files=40, seed=9))
    programs = gen.programs()
    assert len(programs) == 40
    assert all(p.language == "python" for p in programs)


def test_python_files_are_valid_python(preg):
    import ast

    gen = CorpusGenerator(preg, CorpusConfig(n_files=30, seed=2))
    for f in gen.generate():
        ast.parse(f.text)  # must not raise


def test_corpus_exercises_many_classes(jreg):
    gen = CorpusGenerator(jreg, CorpusConfig(n_files=150, seed=7))
    used = set()
    for f in gen.generate():
        used.update(f.classes)
    # the weighted sampling should reach most of the registry
    assert len(used) >= len(jreg.classes) * 0.7


def test_value_type_lookup(jreg):
    vt = jreg.value_type("java.io.File")
    assert "getName" in vt.consumers
    assert vt.producer == ("example.db.Database", "getFile")


def test_classes_by_package_grouping(jreg):
    grouped = jreg.classes_by_package()
    assert "java.util" in grouped
    assert len(grouped["java.util"]) >= 4
