"""Shared fixtures: small IR programs used across the test suite."""

from __future__ import annotations

import pytest

from repro.ir import ProgramBuilder

HASHMAP = "java.util.HashMap"


def build_fig2_program():
    """The running example of paper Fig. 2:

    .. code-block:: java

        Map<String, File> map = new HashMap<>();
        map.put("key", someApi.getFile());
        String name = map.get("key").getName();
    """
    pb = ProgramBuilder(source="fig2.java")
    b = pb.function("main")
    api = b.alloc("SomeApi")
    map_ = b.alloc("HashMap")
    s1 = b.const("key")
    o1 = b.call("SomeApi.getFile", receiver=api)
    b.call(f"{HASHMAP}.put", receiver=map_, args=[s1, o1], returns=False)
    s2 = b.const("key")
    o2 = b.call(f"{HASHMAP}.get", receiver=map_, args=[s2])
    b.call("java.io.File.getName", receiver=o2)
    pb.add(b.finish())
    return pb.finish()


@pytest.fixture
def fig2_program():
    return build_fig2_program()
