"""Tests for the from-scratch sparse logistic regression."""

import math
import random

import pytest

from repro.model.logistic import LogisticRegression, TrainConfig


def test_untrained_predicts_half():
    model = LogisticRegression(dim=128)
    assert model.predict_proba((1, 2, 3)) == pytest.approx(0.5)


def test_learns_linearly_separable_data():
    model = LogisticRegression(dim=64, config=TrainConfig(epochs=12))
    # feature 1 present → positive; feature 2 present → negative
    examples = [((0, 1), 1), ((0, 2), 0)] * 50
    model.fit(examples)
    assert model.predict_proba((0, 1)) > 0.9
    assert model.predict_proba((0, 2)) < 0.1
    assert model.predict((0, 1)) == 1
    assert model.predict((0, 2)) == 0


def test_loss_decreases_over_epochs():
    rng = random.Random(3)
    examples = []
    for _ in range(200):
        label = rng.randint(0, 1)
        base = 10 if label else 20
        noise = rng.randrange(30, 40)
        examples.append(((base, noise), label))
    model = LogisticRegression(dim=64, config=TrainConfig(epochs=8))
    losses = model.fit(examples)
    assert losses[-1] < losses[0]


def test_training_is_deterministic():
    examples = [((0, 1), 1), ((0, 2), 0)] * 20
    m1 = LogisticRegression(dim=64)
    m2 = LogisticRegression(dim=64)
    m1.fit(examples)
    m2.fit(examples)
    assert m1.predict_proba((0, 1)) == m2.predict_proba((0, 1))


def test_colliding_features_share_weight():
    model = LogisticRegression(dim=8)
    model.fit([((3,), 1)] * 30)
    # any index congruent to 3 gets the same weight cell
    assert model.predict_proba((3,)) > 0.9


def test_l2_shrinks_weights():
    big_l2 = LogisticRegression(dim=16, config=TrainConfig(epochs=10, l2=0.5))
    no_l2 = LogisticRegression(dim=16, config=TrainConfig(epochs=10, l2=0.0))
    examples = [((1,), 1), ((2,), 0)] * 30
    big_l2.fit(examples)
    no_l2.fit(examples)
    assert abs(big_l2.weights[1]) < abs(no_l2.weights[1])


def test_partial_fit_returns_logloss():
    model = LogisticRegression(dim=16)
    loss = model.partial_fit((1,), 1)
    assert loss == pytest.approx(math.log(2), rel=1e-6)


def test_empty_indices_decision_zero():
    model = LogisticRegression(dim=16)
    assert model.decision(()) == 0.0
    assert model.predict_proba(()) == pytest.approx(0.5)
