"""Tests for the Python frontend (ast → IR lowering)."""

from repro.frontend.pyfront import parse_python
from repro.frontend.signatures import ApiSignatures, MethodSig
from repro.ir import Call, Const, FieldStore, iter_calls, iter_instructions


def calls_of(prog, fn="main"):
    return [c.method for c in iter_calls(prog.functions[fn])]


def test_dict_display_and_subscripts():
    prog = parse_python('d = {}\nd["k"] = v\nx = d["k"]\n')
    methods = calls_of(prog)
    assert "Dict.SubscriptStore" in methods
    assert "Dict.SubscriptLoad" in methods


def test_subscript_store_args_are_key_value():
    prog = parse_python('d = {}\nd["k"] = "v"\n')
    store = next(c for c in iter_calls(prog.functions["main"])
                 if "SubscriptStore" in c.method)
    assert store.nargs == 2


def test_dict_literal_entries_stored():
    prog = parse_python('d = {"a": 1, "b": 2}\n')
    stores = [c for c in iter_calls(prog.functions["main"])
              if "SubscriptStore" in c.method]
    assert len(stores) == 2


def test_list_display_appends():
    prog = parse_python("xs = [1, 2]\n")
    assert calls_of(prog).count("List.append") == 2


def test_module_class_constructor_allocates():
    prog = parse_python(
        "import configparser\n"
        "cfg = configparser.ConfigParser()\n"
        'cfg.set("s", "o", "v")\n'
    )
    methods = calls_of(prog)
    assert "configparser.ConfigParser.set" in methods
    allocs = [i for i in iter_instructions(prog.functions["main"].body)
              if type(i).__name__ == "Alloc"]
    assert any(a.type_name == "configparser.ConfigParser" for a in allocs)


def test_from_import_constructor():
    prog = parse_python(
        "from collections import OrderedDict\n"
        "d = OrderedDict()\n"
        'd["k"] = 1\n'
    )
    assert "collections.OrderedDict.SubscriptStore" in calls_of(prog)


def test_module_function_call():
    prog = parse_python("import os\np = os.getcwd()\n")
    assert "os.getcwd" in calls_of(prog)


def test_import_as_alias():
    prog = parse_python("import numpy as np\na = np.zeros(3)\n")
    assert "numpy.zeros" in calls_of(prog)


def test_dotted_module_function():
    prog = parse_python("import os\np = os.path.join(a, b)\n")
    assert "os.path.join" in calls_of(prog)


def test_kwargs_param_is_dict_typed():
    prog = parse_python(
        "def f(**kwargs):\n"
        "    return kwargs.pop('value', '')\n"
    )
    assert "Dict.pop" in calls_of(prog, "f")


def test_for_loop_iterator_protocol():
    prog = parse_python("for x in items:\n    use(x)\n")
    methods = calls_of(prog)
    assert "__iter__" in methods  # untyped iterable: bare protocol name
    assert "iterator.__next__" in methods


def test_typed_for_loop_iterator():
    prog = parse_python("xs = []\nfor x in xs:\n    use(x)\n")
    assert "List.__iter__" in calls_of(prog)


def test_if_merge_creates_phi():
    prog = parse_python(
        "x = make()\n"
        "if cond:\n"
        "    x = other()\n"
        "use(x)\n"
    )
    use = next(c for c in iter_calls(prog.functions["main"]) if c.method == "use")
    assert use.args[0].name.startswith("x#")


def test_functions_and_methods_collected():
    prog = parse_python(
        "def top():\n    pass\n"
        "class C:\n"
        "    def meth(self):\n        pass\n"
    )
    assert set(prog.functions) == {"top", "meth", "main"}


def test_local_class_constructor():
    prog = parse_python(
        "class Widget:\n    pass\n"
        "w = Widget()\n"
        "w.render()\n"
    )
    assert "Widget.render" in calls_of(prog)


def test_attribute_store():
    prog = parse_python("obj.attr = value\n")
    stores = [i for i in iter_instructions(prog.functions["main"].body)
              if isinstance(i, FieldStore)]
    assert stores and stores[0].field == "attr"


def test_with_statement_binds_result():
    prog = parse_python(
        'with open("f") as fh:\n'
        "    data = fh.read()\n"
    )
    assert "open" in calls_of(prog)
    assert "read" in calls_of(prog)


def test_try_except_lowered():
    prog = parse_python(
        "try:\n    x = risky()\nexcept ValueError:\n    x = fallback()\n"
        "use(x)\n"
    )
    methods = calls_of(prog)
    assert "risky" in methods and "fallback" in methods
    use = next(c for c in iter_calls(prog.functions["main"]) if c.method == "use")
    assert use.args[0].name.startswith("x#")


def test_del_subscript():
    prog = parse_python("d = {}\ndel d['k']\n")
    assert "Dict.SubscriptDel" in calls_of(prog)


def test_fstring_lowered_to_prim():
    prog = parse_python('s = f"{a}-{b}"\n')
    prims = [i for i in iter_instructions(prog.functions["main"].body)
             if type(i).__name__ == "Prim"]
    assert any(p.op == "fstring" for p in prims)


def test_comprehension_evaluates_iterable():
    prog = parse_python("ys = [f(x) for x in xs]\n")
    methods = calls_of(prog)
    assert "f" in methods


def test_unknown_constructs_do_not_crash():
    prog = parse_python(
        "async def g():\n    await thing()\n"
        "x = lambda: 1\n"
        "y = (yield) if False else None\n" if False else
        "x = lambda: 1\n"
    )
    assert "main" in prog.functions


def test_signature_return_type_enables_chaining():
    s = ApiSignatures()
    s.register(MethodSig("pandas", "read_csv", "pandas.DataFrame"))
    s.register(MethodSig("pandas.DataFrame", "head", "pandas.DataFrame"))
    prog = parse_python(
        "import pandas as pd\n"
        'df = pd.read_csv("f.csv")\n'
        "h = df.head()\n",
        signatures=s,
    )
    assert "pandas.DataFrame.head" in calls_of(prog)
