"""Bundle-resident streaming extraction: the residency registry,
worker-affinity scheduling over the persistent pool, extract-phase
chaos, in-run cache pinning, vanished-entry healing, payload
compression, and worker reconnect."""

import base64
import multiprocessing
import os
import pickle
import socket
import threading
import zlib
from pathlib import Path

import pytest

from repro.cli import main
from repro.corpus import CorpusConfig, CorpusGenerator, java_registry
from repro.dist import Coordinator, DistConfig
from repro.dist.protocol import (
    PROTOCOL_VERSION,
    FrameDecoder,
    ProtocolError,
    pack_payload,
    recv_frame,
    send_frame,
    unpack_payload,
)
from repro.dist.worker import run_worker
from repro.mining import MiningConfig, MiningEngine
from repro.mining.cache import (
    AnalysisCache,
    BUNDLE_SUFFIX,
    CacheEntryVanished,
    pipeline_fingerprint,
)
from repro.mining.engine import ExtractTask, _extract_tag
from repro.mining.residency import (
    BundleResidency,
    pack_bundle,
    process_residency,
    residency_group,
    unpack_bundle,
)
from repro.mining.supervisor import ShardSupervisor, SupervisionConfig
from repro.runtime import ChaosPlan, ChaosSpec, RuntimeConfig
from repro.runtime.checkpoint import program_key
from repro.runtime.faults import CorruptResult
from repro.specs.pipeline import PipelineConfig
from repro.specs.serialize import specs_to_json


def java_corpus(n=8, seed=7):
    return CorpusGenerator(
        java_registry(), CorpusConfig(n_files=n, seed=seed)).programs()


def learn(programs, *, jobs=1, shards=None, cache_dir=None,
          cache_budget=None, strict=False, chaos=None, max_retries=2,
          resident=True):
    config = PipelineConfig(runtime=RuntimeConfig(strict=strict))
    supervision = SupervisionConfig(
        max_retries=max_retries,
        backoff_base=0.01,  # keep test wall-clock down
        chaos=ChaosPlan(tuple(chaos)) if chaos else None,
    )
    mining = MiningConfig(
        jobs=jobs, shards=shards,
        cache_dir=str(cache_dir) if cache_dir else None,
        cache_budget=cache_budget, supervision=supervision,
        resident=resident,
    )
    return MiningEngine(config, mining).learn(programs)


def specs_text(learned):
    return specs_to_json(learned.specs, learned.scores)


def manifest_text(learned):
    return learned.run.manifest.to_json(timings=False)


# ----------------------------------------------------------------------
# the residency registry


def test_bundle_residency_publish_get_discard():
    registry = BundleResidency(max_bundles=8)
    registry.publish("g1", "a", "bundle-a")
    registry.publish("g1", "b", "bundle-b")
    registry.publish("g2", "a", "other-a")  # same key, other group
    assert len(registry) == 3
    assert registry.get("g1", "a") == "bundle-a"
    assert registry.get("g2", "a") == "other-a"
    assert registry.get("g1", "missing") is None
    assert registry.get("nope", "a") is None
    assert registry.groups() == ["g1", "g2"]  # sorted, deduplicated
    registry.discard("g1", ["a"])  # selective discard
    assert registry.get("g1", "a") is None
    assert registry.get("g1", "b") == "bundle-b"
    registry.discard("g2")  # whole-group discard
    assert registry.get("g2", "a") is None
    assert registry.groups() == ["g1"]
    registry.clear()
    assert len(registry) == 0 and registry.groups() == []


def test_bundle_residency_republish_is_idempotent():
    registry = BundleResidency(max_bundles=4)
    registry.publish("g", "k", "v1")
    registry.publish("g", "k", "v2")  # refresh, not a second slot
    assert len(registry) == 1
    assert registry.get("g", "k") == "v2"


def test_bundle_residency_capacity_drops_oldest():
    registry = BundleResidency(max_bundles=2)
    registry.publish("g", "k0", "v0")
    registry.publish("g", "k1", "v1")
    registry.publish("g", "k2", "v2")  # evicts k0 (FIFO)
    assert len(registry) == 2
    assert registry.get("g", "k0") is None
    assert registry.get("g", "k1") == "v1"
    assert registry.get("g", "k2") == "v2"
    assert registry.n_dropped == 1


def test_residency_group_is_stable_per_run_and_shard():
    fingerprint = "f" * 64
    assert residency_group(fingerprint, 3) == residency_group(
        fingerprint, 3)
    assert residency_group(fingerprint, 3) != residency_group(
        fingerprint, 4)
    assert residency_group(fingerprint, 3) != residency_group(
        "e" * 64, 3)


def test_pack_bundle_roundtrip_and_type_check():
    learned = learn(java_corpus(2))
    bundle = learned.run.bundles[0]
    restored = unpack_bundle(pack_bundle(bundle))
    assert type(restored) is type(bundle)
    assert restored.program.source == bundle.program.source
    assert len(restored.graph.events) == len(bundle.graph.events)
    with pytest.raises(TypeError):
        unpack_bundle(zlib.compress(pickle.dumps({"not": "a bundle"})))


# ----------------------------------------------------------------------
# extract tags and the vanished-entry exception


def test_extract_tag_empty_fragments_do_not_collide():
    assert _extract_tag(3, [("000001:a.java", "cafe")], ()) \
        == "000001:a.java"
    root = _extract_tag(3, [], ())
    left = _extract_tag(3, [], (0,))
    right = _extract_tag(3, [], (1,))
    deep = _extract_tag(3, [], (1, 0))
    assert len({root, left, right, deep}) == 4  # the old "" collided
    assert _extract_tag(4, [], (0,)) != left  # distinct across shards
    # synthetic tags sort before every real program key
    assert all(tag < "000000:" for tag in (root, left, right, deep))


def test_cache_entry_vanished_survives_the_result_pipe():
    err = CacheEntryVanished(
        [("000001:a.java", "cafe"), ("000002:b.java", "")], "/tmp/c")
    restored = pickle.loads(pickle.dumps(err))
    assert isinstance(restored, CacheEntryVanished)
    assert restored.refs == err.refs
    assert restored.cache_dir == "/tmp/c"
    assert "000001:a.java" in str(restored)
    assert "entries" in str(restored)  # plural for two refs
    single = CacheEntryVanished([("k", "c")], None)
    assert "entry " in str(single)


# ----------------------------------------------------------------------
# cache pinning


def _seed_entry(directory, cache_key, size, mtime):
    path = Path(directory) / f"{cache_key}{BUNDLE_SUFFIX}"
    path.write_bytes(b"x" * size)
    os.utime(path, (mtime, mtime))
    return path


def test_evict_to_budget_skips_pinned_entries(tmp_path):
    cache = AnalysisCache(tmp_path, "fp")
    old = _seed_entry(tmp_path, "aaaa", 100, 1_000.0)
    new = _seed_entry(tmp_path, "bbbb", 100, 2_000.0)
    cache.pin(["aaaa"])
    # the oldest entry is pinned, so only the newer one can go
    assert cache.evict_to_budget(0) == 1
    assert old.exists() and not new.exists()
    # the pinned survivor is untouchable even with the budget blown
    assert cache.evict_to_budget(0) == 0
    assert old.exists()
    # ...whether pinned on the instance or via the argument
    other = AnalysisCache(tmp_path, "fp")
    assert other.evict_to_budget(0, pinned=frozenset({"aaaa"})) == 0
    cache.unpin()
    assert cache.evict_to_budget(0) == 1
    assert not old.exists()


def test_unpin_releases_selected_keys(tmp_path):
    cache = AnalysisCache(tmp_path, "fp")
    a = _seed_entry(tmp_path, "aaaa", 10, 1_000.0)
    b = _seed_entry(tmp_path, "bbbb", 10, 2_000.0)
    cache.pin(["aaaa", "bbbb"])
    cache.unpin(["aaaa"])
    assert cache.evict_to_budget(0) == 1
    assert not a.exists() and b.exists()


# ----------------------------------------------------------------------
# phase-scoped chaos


def test_chaos_spec_parse_accepts_phase_forms():
    assert ChaosSpec.parse("kill:prog") == ChaosSpec("prog", "kill")
    assert ChaosSpec.parse("kill:prog:1") == ChaosSpec(
        "prog", "kill", until_attempt=1)
    assert ChaosSpec.parse("hang:prog:extract") == ChaosSpec(
        "prog", "hang", phase="extract")
    assert ChaosSpec.parse("kill:prog:2:extract") == ChaosSpec(
        "prog", "kill", until_attempt=2, phase="extract")
    assert ChaosSpec.parse("kill:prog::extract") == ChaosSpec(
        "prog", "kill", phase="extract")
    with pytest.raises(ValueError):
        ChaosSpec.parse("kill:prog:banana")  # neither int nor phase
    with pytest.raises(ValueError):
        ChaosSpec.parse("kill:prog:1:extract:why")


def test_chaos_probe_is_phase_scoped():
    plan = ChaosPlan((ChaosSpec("prog", "corrupt", phase="extract"),))
    assert plan.probe(0, phase="analyze") is None  # no analyze specs
    probe = plan.probe(0, phase="extract")
    assert probe is not None
    with pytest.raises(CorruptResult):
        probe("000001:prog.java")
    probe("000001:other.java")  # non-matching key is untouched
    spec = ChaosSpec("prog", "kill")  # defaults to the analyze phase
    assert spec.matches("000001:prog.java", 0)
    assert not spec.matches("000001:prog.java", 0, phase="extract")


# ----------------------------------------------------------------------
# the persistent pool


def _echo_pid(payload, attempt):
    return ("pid", os.getpid())


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="needs fork")
def test_worker_pool_persists_across_phases():
    ctx = multiprocessing.get_context("fork")
    supervisor = ShardSupervisor(
        ctx, 2, SupervisionConfig(backoff_base=0.01))
    kwargs = dict(
        runner=_echo_pid,
        splitter=lambda payload: None,
        poisoner=lambda payload, kind, error: ("pid", -1),
        validator=lambda result: (
            isinstance(result, tuple) and result[0] == "pid"),
    )
    try:
        tasks = [(0, "shard-0"), (1, "shard-1")]
        first = supervisor.run_phase("analyze", tasks, **kwargs)
        second = supervisor.run_phase("extract", tasks, **kwargs)
        pids_first = {pid for _, pid in first}
        pids_second = {pid for _, pid in second}
        assert len(pids_first) == 2  # both workers served a task
        # the same processes crossed the phase barrier — no respawn
        assert pids_first == pids_second
        processes = [w.process for w in supervisor._workers]
        assert all(p.is_alive() for p in processes)
    finally:
        supervisor.close()
    assert supervisor._workers == []
    assert all(not p.is_alive() for p in processes)


# ----------------------------------------------------------------------
# resident extraction end to end


def test_resident_extraction_is_byte_identical_and_hits_affinity():
    programs = java_corpus()
    clean = learn(programs)
    warm = learn(programs, jobs=2)
    assert specs_text(warm) == specs_text(clean)
    assert manifest_text(warm) == manifest_text(clean)
    report = warm.mining
    assert report.supervised and report.resident
    # every analyze owner was alive and idle at the extract barrier,
    # so at least its first extract task was served from memory
    assert report.n_affinity_hits > 0
    data = report.to_dict()
    assert data["resident"] is True
    assert data["n_affinity_hits"] == report.n_affinity_hits
    assert data["affinity_hit_rate"] == pytest.approx(
        report.affinity_hit_rate)


def test_no_residency_flag_preserves_byte_identity():
    programs = java_corpus()
    warm = learn(programs, jobs=2)
    cold = learn(programs, jobs=2, resident=False)
    assert specs_text(cold) == specs_text(warm)
    assert manifest_text(cold) == manifest_text(warm)
    assert cold.mining.resident is False
    assert cold.mining.to_dict()["resident"] is False


def test_extract_phase_kill_is_retried_and_specs_match_clean():
    programs = java_corpus()
    clean = learn(programs)
    chaos = [ChaosSpec("corpus_00003", "kill", until_attempt=1,
                       phase="extract")]
    learned = learn(programs, jobs=2, chaos=chaos)
    assert specs_text(learned) == specs_text(clean)
    assert manifest_text(learned) == manifest_text(clean)
    ledger = learned.mining.ledger
    assert ledger.n_worker_crashes >= 1
    assert ledger.n_poisoned == 0
    assert learned.mining.n_quarantined == 0
    # the crash happened in the extract phase, not analyze
    extract_tasks = [t for t in ledger.tasks if t.phase == "extract"]
    assert any(a.outcome == "crash"
               for t in extract_tasks for a in t.attempts)
    # the respawned worker has an empty residency: the retried task's
    # affinity points at a dead label, so it reloads from the cache
    assert learned.mining.n_affinity_misses >= 1


def test_budget_starved_resident_run_completes(tmp_path):
    programs = java_corpus()
    clean = learn(programs)
    starved = learn(programs, jobs=2, cache_dir=tmp_path / "cache",
                    cache_budget=1)
    assert specs_text(starved) == specs_text(clean)
    assert manifest_text(starved) == manifest_text(clean)
    # the final (unpinned) sweep still enforces the budget
    assert starved.mining.n_evicted > 0
    assert starved.mining.n_quarantined == 0


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="needs fork")
def test_vanished_cache_entries_are_healed_by_reanalysis(monkeypatch):
    programs = java_corpus(6)
    clean = learn(programs)
    # forked pool workers inherit the patch: every cache read misses,
    # as if the eviction raced the extract phase on every entry (both
    # read entry points — the worker's bundle load and the healer's
    # raw-bytes shipment — must miss for re-analysis to kick in)
    monkeypatch.setattr(
        AnalysisCache, "load_bundle_by_key", lambda self, key: None)
    monkeypatch.setattr(
        AnalysisCache, "load_bundle_payload", lambda self, key: None)
    learned = learn(programs, jobs=2, resident=False)
    assert specs_text(learned) == specs_text(clean)
    assert manifest_text(learned) == manifest_text(clean)
    report = learned.mining
    # the healer re-analysed every program in the parent and shipped
    # the rebuilt bundles on the retried payloads
    assert report.n_cache_repairs == len(programs)
    assert report.n_bundles_shipped == 0
    assert report.ledger.n_poisoned == 0
    # healing consumed no retry budget: the error attempts are on the
    # ledger, but no task was bisected or quarantined
    assert report.ledger.n_bisections == 0
    assert any(a.outcome == "error"
               for t in report.ledger.tasks for a in t.attempts)


def test_healer_repairs_and_refuses_bounded(tmp_path):
    programs = java_corpus(3)
    config = PipelineConfig()
    engine = MiningEngine(config, MiningConfig())
    fingerprint = pipeline_fingerprint(config)
    units = {program_key(p, i): p
             for i, p in enumerate(programs)}
    counts = {"repaired": 0, "shipped": 0}
    heal = engine._heal_extract(
        str(tmp_path), fingerprint, units, counts)
    key = sorted(units)[0]
    payload = ExtractTask(
        config=config, cache_dir=str(tmp_path),
        fingerprint=fingerprint, shard_id=0,
        refs=((key, "deadbeef"),), model=None)
    err = CacheEntryVanished([(key, "deadbeef")], str(tmp_path))
    repaired = heal(payload, err)
    assert repaired is not None
    assert counts == {"repaired": 1, "shipped": 0}
    shipped = dict(repaired.shipped)
    assert set(shipped) == {key}
    bundle = unpack_bundle(shipped[key])
    assert bundle.program.source == units[key].source
    # a second vanish of an already-shipped key is not healable —
    # this bounds the heal loop
    assert heal(repaired, err) is None
    # unknown program keys and unrelated failures are not healable
    ghost = CacheEntryVanished([("999999:ghost.java", "")], None)
    assert heal(payload, ghost) is None
    assert heal(payload, RuntimeError("boom")) is None


# ----------------------------------------------------------------------
# payload compression (dist protocol v2)


def test_payload_compression_markers_roundtrip():
    small = {"kind": "control"}
    text = pack_payload(small)
    assert base64.b64decode(text)[:1] == b"\x00"  # below threshold
    assert unpack_payload(text) == small
    big = {"blob": "spec " * 4096}
    text = pack_payload(big)
    body = base64.b64decode(text)
    assert body[:1] == b"\x01"
    assert len(body) < len(pickle.dumps(big))  # actually compressed
    assert unpack_payload(text) == big
    forced = pack_payload(big, compress=False)
    assert base64.b64decode(forced)[:1] == b"\x00"
    assert unpack_payload(forced) == big


def test_unpack_payload_rejects_garbage():
    with pytest.raises(ProtocolError):
        unpack_payload(base64.b64encode(b"").decode("ascii"))
    with pytest.raises(ProtocolError):
        unpack_payload(base64.b64encode(b"\x07junk").decode("ascii"))
    with pytest.raises(ProtocolError):
        unpack_payload(base64.b64encode(b"\x01not-zlib").decode("ascii"))


# ----------------------------------------------------------------------
# worker reconnect and residency advertisement


def _coordinator_stub(listener, sessions, ready_frames):
    """Accept ``sessions`` worker sessions; welcome each, record its
    first ready frame, then drop all but the last, which is shut down
    cleanly."""
    for index in range(sessions):
        conn, _ = listener.accept()
        decoder, pending = FrameDecoder(), []
        try:
            hello = recv_frame(conn, decoder, pending)
            assert hello and hello["type"] == "hello"
            send_frame(conn, {
                "type": "welcome", "version": PROTOCOL_VERSION,
                "lease": 5.0,
            })
            ready = recv_frame(conn, decoder, pending)
            ready_frames.append(ready)
            if index + 1 < sessions:
                continue  # drop: the finally closes the socket
            send_frame(conn, {"type": "shutdown"})
            recv_frame(conn, decoder, pending)  # goodbye
        finally:
            conn.close()


def _stub_listener():
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(4)
    return listener, listener.getsockname()


def test_worker_reconnects_after_coordinator_hangup():
    listener, (host, port) = _stub_listener()
    ready_frames = []
    server = threading.Thread(
        target=_coordinator_stub, args=(listener, 2, ready_frames),
        daemon=True)
    server.start()
    try:
        done = run_worker(host, port, name="rw", reconnect=True,
                          retry_delay=0.0, sleep=lambda s: None)
    finally:
        server.join(timeout=10)
        listener.close()
    assert done == 0
    assert len(ready_frames) == 2  # one registration per session


def test_worker_without_reconnect_stops_on_hangup():
    listener, (host, port) = _stub_listener()
    ready_frames = []
    server = threading.Thread(
        target=_coordinator_stub, args=(listener, 1, ready_frames),
        daemon=True)
    server.start()
    try:
        done = run_worker(host, port, name="rw", sleep=lambda s: None)
    finally:
        server.join(timeout=10)
        listener.close()
    assert done == 0
    assert len(ready_frames) == 1


def test_worker_reconnect_budget_is_finite():
    listener, (host, port) = _stub_listener()
    listener.close()  # nothing listens: every connect fails
    with pytest.raises(ConnectionError):
        run_worker(host, port, reconnect=True, connect_retries=1,
                   retry_delay=0.0, reconnect_rounds=2,
                   sleep=lambda s: None)


def test_worker_reconnect_does_not_mask_protocol_errors():
    listener, (host, port) = _stub_listener()

    def reject():
        conn, _ = listener.accept()
        decoder, pending = FrameDecoder(), []
        recv_frame(conn, decoder, pending)
        send_frame(conn, {"type": "error",
                          "error": "version mismatch"})
        conn.close()

    server = threading.Thread(target=reject, daemon=True)
    server.start()
    try:
        with pytest.raises(ProtocolError):
            run_worker(host, port, reconnect=True,
                       sleep=lambda s: None)
    finally:
        server.join(timeout=10)
        listener.close()


def test_ready_frames_advertise_resident_groups():
    registry = process_residency()
    registry.clear()
    group = residency_group("f" * 64, 7)
    registry.publish(group, "000001:a.java", "sentinel")
    listener, (host, port) = _stub_listener()
    ready_frames = []
    server = threading.Thread(
        target=_coordinator_stub, args=(listener, 1, ready_frames),
        daemon=True)
    server.start()
    try:
        run_worker(host, port, name="rw", sleep=lambda s: None)
    finally:
        server.join(timeout=10)
        listener.close()
        registry.clear()
    assert ready_frames[0].get("resident") == [group]


# ----------------------------------------------------------------------
# distributed residency


def test_distributed_resident_extraction_matches_local():
    programs = java_corpus(12)
    local = learn(programs, jobs=2)
    coordinator = Coordinator(DistConfig(
        min_workers=2, lease_seconds=10.0, no_worker_timeout=60.0))
    host, port = coordinator.bind()
    workers = [
        threading.Thread(
            target=run_worker, args=(host, port),
            kwargs={"name": f"w{i}", "connect_retries": 60},
            daemon=True)
        for i in range(2)
    ]
    for worker in workers:
        worker.start()
    try:
        config = PipelineConfig(runtime=RuntimeConfig())
        mining = MiningConfig(
            jobs=2,
            supervision=SupervisionConfig(backoff_base=0.01))
        dist = MiningEngine(config, mining, coordinator).learn(programs)
    finally:
        coordinator.close()
        for worker in workers:
            worker.join(timeout=10)
    assert specs_text(dist) == specs_text(local)
    assert manifest_text(dist) == manifest_text(local)
    assert dist.mining.distributed and dist.mining.resident
    # thread workers share one process registry, so every advertised
    # ready frame carries every analysed group: extraction always
    # lands on a worker that holds the bundles
    assert dist.mining.n_affinity_hits > 0


# ----------------------------------------------------------------------
# CLI


def test_cli_no_residency_flag_and_report_line(tmp_path, capsys):
    warm = tmp_path / "warm.json"
    cold = tmp_path / "cold.json"
    assert main(["learn", "--files", "8", "--jobs", "2",
                 "--out", str(warm)]) == 0
    out = capsys.readouterr().out
    assert "bundle residency" in out
    assert main(["learn", "--files", "8", "--jobs", "2",
                 "--no-residency", "--out", str(cold)]) == 0
    out = capsys.readouterr().out
    assert "bundle residency" not in out
    assert warm.read_bytes() == cold.read_bytes()


def test_cli_budget_starved_streaming_run_matches_clean(tmp_path,
                                                        capsys):
    clean = tmp_path / "clean.json"
    starved = tmp_path / "starved.json"
    assert main(["learn", "--files", "8",
                 "--out", str(clean)]) == 0
    capsys.readouterr()
    code = main([
        "learn", "--files", "8", "--jobs", "2",
        "--cache-dir", str(tmp_path / "cache"), "--cache-budget", "1",
        "--out", str(starved),
    ])
    assert code == 0
    assert "evicted" in capsys.readouterr().out
    assert clean.read_bytes() == starved.read_bytes()
