"""Tests for the MiniJava lexer."""

import pytest

from repro.frontend.minijava import LexError, tokenize


def kinds(src):
    return [(t.kind, t.text) for t in tokenize(src)[:-1]]


def test_identifiers_and_keywords():
    assert kinds("foo if whilex") == [
        ("ident", "foo"), ("keyword", "if"), ("ident", "whilex")
    ]


def test_string_literal_with_escapes():
    assert kinds(r'"a\nb\"c"') == [("string", 'a\nb"c')]


def test_unterminated_string_raises():
    with pytest.raises(LexError):
        tokenize('"abc')
    with pytest.raises(LexError):
        tokenize('"abc\n"')


def test_numbers():
    assert kinds("1 23 4.5 1L 2.0f") == [
        ("int", "1"), ("int", "23"), ("float", "4.5"),
        ("int", "1"), ("float", "2.0"),
    ]


def test_comments_skipped():
    assert kinds("a // comment\nb /* block\nstill */ c") == [
        ("ident", "a"), ("ident", "b"), ("ident", "c")
    ]


def test_unterminated_block_comment_raises():
    with pytest.raises(LexError):
        tokenize("/* never closed")


def test_maximal_munch_operators():
    assert kinds("a<=b==c&&d") == [
        ("ident", "a"), ("op", "<="), ("ident", "b"), ("op", "=="),
        ("ident", "c"), ("op", "&&"), ("ident", "d"),
    ]


def test_increment_vs_plus():
    assert [t for _, t in kinds("i++ + 1")] == ["i", "++", "+", "1"]


def test_line_and_column_tracking():
    tokens = tokenize("a\n  b")
    assert (tokens[0].line, tokens[0].col) == (1, 1)
    assert (tokens[1].line, tokens[1].col) == (2, 3)


def test_unexpected_character():
    with pytest.raises(LexError):
        tokenize("a @ b")


def test_eof_token_present():
    assert tokenize("")[-1].kind == "eof"
