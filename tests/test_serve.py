"""repro.serve: the query ladder, admission control and breaker, the
reply cache keys, the resident daemon end-to-end (including chaos:
slow-loris, malformed frames, worker kills), spec hot-reload, graceful
drain, and the load harness's zero-drop contract."""

import asyncio
import contextlib
import json
import pickle
import random
import threading
import time

import pytest

from repro.runtime.budget import Budget
from repro.runtime.errors import BUDGET_EXCEEDED
from repro.serve import (
    AdmissionQueue,
    CircuitBreaker,
    QueryFailed,
    QueryPayload,
    ServeConfig,
    SpecServer,
    analyze_with_ladder,
    parse_snippet,
    run_query,
)
from repro.serve.admission import CLOSED, HALF_OPEN, OPEN, LatencyWindow
from repro.serve.loadgen import (
    ExponentialDist,
    FixedDist,
    LoadConfig,
    NormalDist,
    UniformDist,
    http_request,
    make_snippet,
    malformed_client,
    parse_distribution,
    post_query,
    run_load,
    slow_loris,
)
from repro.serve.query import (
    canonical_params,
    query_fingerprint,
    reply_cache_key,
)
from repro.specs.patterns import RetArg, RetSame, SpecSet
from repro.specs.serialize import specs_to_json


# ----------------------------------------------------------------------
# distributions (the loadgen sampling layer)


def test_parse_distribution_kinds_and_determinism():
    for spec, cls in (("normal:8,3", NormalDist), ("exp:0.05", ExponentialDist),
                      ("uniform:2,20", UniformDist), ("fixed:6", FixedDist)):
        dist = parse_distribution(spec, 32, random.Random(1))
        assert isinstance(dist, cls)
        assert len(dist) == 32
        assert all(v >= 0.0 for v in dist)
    again = parse_distribution("normal:8,3", 32, random.Random(1))
    assert list(parse_distribution("normal:8,3", 32, random.Random(1))) \
        == list(again)


def test_distribution_description_and_parse_errors():
    dist = parse_distribution("uniform:2,20", 8, random.Random(0))
    assert dist.description == {
        "distribution": "UniformDist", "args": [2.0, 20.0], "n": 8,
    }
    with pytest.raises(ValueError, match="unknown distribution"):
        parse_distribution("zipf:1", 8, random.Random(0))
    with pytest.raises(ValueError, match="takes 2 arg"):
        parse_distribution("normal:8", 8, random.Random(0))
    with pytest.raises(ValueError, match="bad distribution args"):
        parse_distribution("fixed:x", 8, random.Random(0))


def test_make_snippet_deterministic_and_parseable():
    code = make_snippet(9, variant=2)
    assert code == make_snippet(9, variant=2)
    assert code != make_snippet(9, variant=3)
    program = parse_snippet(code)
    result = analyze_with_ladder(program)
    assert len(result.result.api_sites) == 9


# ----------------------------------------------------------------------
# budget plumbing and cache keys


def test_budget_with_deadline_takes_minimum():
    assert Budget().with_deadline(5.0).deadline_seconds == 5.0
    assert Budget(deadline_seconds=2.0).with_deadline(5.0) \
        .deadline_seconds == 2.0
    assert Budget(deadline_seconds=2.0).with_deadline(None) \
        .deadline_seconds == 2.0


def test_query_fingerprint_ignores_budget_but_not_specs():
    assert query_fingerprint("digest-a") == query_fingerprint("digest-a")
    assert query_fingerprint("digest-a") != query_fingerprint("digest-b")


def test_reply_cache_key_varies_by_every_input():
    base = reply_cache_key("fp", "python", "x = 1", "alias", "{}")
    assert base == reply_cache_key("fp", "python", "x = 1", "alias", "{}")
    assert base != reply_cache_key("fp", "python", "x = 2", "alias", "{}")
    assert base != reply_cache_key("fp", "python", "x = 1", "spec", "{}")
    assert base != reply_cache_key("fp", "python", "x = 1", "alias",
                                   '{"limit":5}')
    assert base != reply_cache_key("fp2", "python", "x = 1", "alias", "{}")
    assert base != reply_cache_key("fp", "java", "x = 1", "alias", "{}")


def test_canonical_params_is_order_insensitive():
    assert canonical_params({"b": 1, "a": 2}) \
        == canonical_params({"a": 2, "b": 1})
    assert canonical_params(None) == "{}"


# ----------------------------------------------------------------------
# admission, breaker, latency window


def test_admission_queue_sheds_past_limit():
    queue = AdmissionQueue(2)
    assert queue.try_acquire() and queue.try_acquire()
    assert not queue.try_acquire()
    assert queue.depth == 2
    queue.release()
    assert queue.try_acquire()
    with pytest.raises(ValueError):
        AdmissionQueue(0)


def test_admission_release_without_acquire_raises():
    queue = AdmissionQueue(1)
    with pytest.raises(RuntimeError):
        queue.release()


def test_circuit_breaker_trips_cools_probes_and_recovers():
    now = [0.0]
    breaker = CircuitBreaker(threshold=3, cooldown_seconds=2.0,
                             clock=lambda: now[0])
    assert breaker.state == CLOSED and breaker.allow()
    for _ in range(3):
        breaker.record_failure()
    assert breaker.state == OPEN and breaker.trips == 1
    assert not breaker.allow()  # still cooling
    now[0] = 2.5
    assert breaker.allow()  # the half-open probe
    assert breaker.state == HALF_OPEN
    assert not breaker.allow()  # one probe at a time
    breaker.record_failure()  # probe failed: re-open
    assert breaker.state == OPEN and breaker.trips == 2
    now[0] = 5.0
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state == CLOSED and breaker.allow()


def test_latency_window_percentiles_and_bounded_memory():
    window = LatencyWindow(capacity=8)
    assert window.percentile(50) is None
    for v in range(16):  # overflows capacity; keeps the newest 8
        window.record(float(v))
    assert len(window) == 8
    assert window.percentile(0) == 8.0
    assert window.percentile(100) == 15.0
    assert window.percentile(50) == 12.0


# ----------------------------------------------------------------------
# the degradation ladder under one deadline


def test_analyze_with_ladder_clean_snippet_single_attempt():
    sa = analyze_with_ladder(parse_snippet(make_snippet(4, 0)))
    assert sa.tier == "context-sensitive"
    assert not sa.degraded
    assert len(sa.attempts) == 1


def test_analyze_with_ladder_budget_exhausted_on_every_tier():
    program = parse_snippet(make_snippet(6, 0))
    with pytest.raises(QueryFailed) as exc:
        analyze_with_ladder(program, budget=Budget(max_constraints=1))
    err = exc.value
    assert err.budget_exhausted
    assert not err.deadline_exceeded
    assert [a.tier for a in err.attempts] == [
        "context-sensitive", "context-insensitive", "field-insensitive",
    ]
    assert all(a.error_kind == BUDGET_EXCEEDED for a in err.attempts)


def test_analyze_with_ladder_deadline_is_end_to_end():
    # a fake clock where each tier "takes" 6s: tier 1 eats the 10s
    # allowance, so later tiers never start — that is the serve
    # contract (the client waits on the whole reply, not per tier)
    now = [0.0]

    def clock():
        now[0] += 6.0
        return now[0]

    program = parse_snippet(make_snippet(6, 0))
    with pytest.raises(QueryFailed) as exc:
        analyze_with_ladder(
            program, clock=clock,
            budget=Budget(deadline_seconds=10.0, max_constraints=1),
        )
    err = exc.value
    assert err.deadline_exceeded
    last = err.attempts[-1]
    assert "before this tier could start" in last.error
    assert len(err.attempts) < 3  # the ladder was cut short


def test_query_failed_survives_the_pool_pipe():
    program = parse_snippet(make_snippet(4, 0))
    with pytest.raises(QueryFailed) as exc:
        analyze_with_ladder(program, budget=Budget(max_constraints=1))
    restored = pickle.loads(pickle.dumps(exc.value))
    assert isinstance(restored, QueryFailed)
    assert restored.budget_exhausted
    assert len(restored.attempts) == len(exc.value.attempts)


def test_analyze_with_ladder_strict_propagates_first_error():
    from repro.runtime.budget import BudgetExceeded

    program = parse_snippet(make_snippet(4, 0))
    with pytest.raises(BudgetExceeded):
        analyze_with_ladder(program, budget=Budget(max_constraints=1),
                            strict=True)


# ----------------------------------------------------------------------
# the pool runner


def _specs_fixture_text():
    specs = SpecSet([
        RetSame(method="Dict.get"),
        RetArg(target="Dict.setdefault", source="Dict.get", arg_index=1),
    ])
    return specs_to_json(specs, {RetSame(method="Dict.get"): 0.9})


def test_run_query_alias_reply_shape():
    reply = run_query(QueryPayload(
        kind="alias", language="python", code=make_snippet(6, 0),
    ))
    assert reply["kind"] == "alias"
    assert reply["n_sites"] == 6
    assert not reply["degraded"]
    assert isinstance(reply["pairs"], list)


def test_run_query_spec_matches_loaded_specs():
    text = _specs_fixture_text()
    import hashlib
    reply = run_query(QueryPayload(
        kind="spec", language="python",
        code='d = dict()\nx = d.get("a")\ny = d.setdefault("b", 1)\n',
        specs_json=text,
        specs_digest=hashlib.sha256(text.encode()).hexdigest(),
    ))
    assert "Dict.get" in reply["methods"]
    matched = {entry["spec"] for entry in reply["specs"]}
    assert any("RetSame" in s and "Dict.get" in s for s in matched)
    assert any("RetArg" in s for s in matched)
    scores = [e["score"] for e in reply["specs"] if "score" in e]
    assert scores == [pytest.approx(0.9)] or 0.9 in scores


def test_run_query_taint_finds_source_to_sink_flow():
    reply = run_query(QueryPayload(
        kind="taint", language="python",
        code='d = dict()\nx = d.get("a")\ny = d.setdefault(x, 1)\n',
        params=canonical_params({"sources": ["Dict.get"],
                                 "sinks": ["Dict.setdefault"]}),
    ))
    assert reply["flows"] == [
        {"source": "Dict.get", "sink": "Dict.setdefault", "arg": 1},
    ]


def test_run_query_rejects_unknown_kind_and_language():
    with pytest.raises(ValueError):
        run_query(QueryPayload(kind="nope", language="python", code="x=1"))
    with pytest.raises(ValueError):
        run_query(QueryPayload(kind="alias", language="cobol", code="x=1"))


# ----------------------------------------------------------------------
# the daemon end-to-end


@contextlib.contextmanager
def serve_daemon(**overrides):
    """A SpecServer on an ephemeral port, run in a background loop."""
    overrides.setdefault("port", 0)
    overrides.setdefault("workers", 2)
    # fork keeps worker boot fast in tests; the loadgen client reads
    # Content-Length so inherited-fd EOF delays cannot bite here
    overrides.setdefault("mp_context", "fork")
    overrides.setdefault("header_timeout", 1.0)
    config = ServeConfig(**overrides)
    server = SpecServer(config)
    bound = {}
    ready = threading.Event()
    loop = asyncio.new_event_loop()

    async def boot():
        bound["addr"] = await server.start()
        ready.set()
        await server.run_until_stopped()

    thread = threading.Thread(
        target=lambda: loop.run_until_complete(boot()), daemon=True)
    thread.start()
    assert ready.wait(timeout=60), "daemon failed to boot"
    host, port = bound["addr"]
    try:
        yield server, host, port
    finally:
        server.request_stop()
        thread.join(timeout=60)
        assert not thread.is_alive(), "daemon failed to drain"
        loop.close()


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    specs_path = tmp_path_factory.mktemp("serve") / "specs.json"
    specs_path.write_text(_specs_fixture_text())
    with serve_daemon(specs_path=str(specs_path),
                      chaos_enabled=True) as (server, host, port):
        yield server, host, port


def test_serve_health_ready_statz(daemon):
    server, host, port = daemon
    assert http_request(host, port, "GET", "/healthz") \
        == (200, {"status": "alive"})
    status, ready = http_request(host, port, "GET", "/readyz")
    assert status == 200 and ready["status"] == "ready"
    status, stats = http_request(host, port, "GET", "/statz")
    assert status == 200
    assert stats["admission_limit"] == 8
    assert stats["n_specs"] == 2
    assert stats["pool"]["size"] == 2


def test_serve_alias_then_cache_hit(daemon):
    server, host, port = daemon
    code = make_snippet(5, variant=7)
    status, reply = post_query(host, port, "alias", code)
    assert status == 200
    assert reply["n_sites"] == 5 and not reply.get("cached")
    status, again = post_query(host, port, "alias", code)
    assert status == 200 and again["cached"]
    assert again["pairs"] == reply["pairs"]
    assert server.stats.cache_hits >= 1


def test_serve_spec_and_taint_kinds(daemon):
    server, host, port = daemon
    status, reply = post_query(
        host, port, "spec",
        'd = dict()\nx = d.get("a")\n')
    assert status == 200
    assert "Dict.get" in reply["methods"]
    assert reply["specs"]  # the fixture specs match
    status, reply = post_query(
        host, port, "taint",
        'd = dict()\nx = d.get("a")\ny = d.setdefault(x, 1)\n',
        params={"sources": ["Dict.get"], "sinks": ["Dict.setdefault"]})
    assert status == 200
    assert reply["flows"]


def test_serve_typed_client_errors(daemon):
    server, host, port = daemon
    assert http_request(host, port, "POST", "/v1/alias",
                        b"{not json")[0] == 400
    assert http_request(host, port, "POST", "/v1/alias",
                        b'{"nope": 1}')[1] == {"error": "missing_code"}
    assert post_query(host, port, "alias", "x = 1",
                      language="cobol")[1] == {"error": "unknown_language"}
    assert http_request(host, port, "POST", "/v1/frobnicate",
                        b"{}")[0] == 404
    assert http_request(host, port, "GET", "/v1/alias")[0] == 405
    assert http_request(host, port, "GET", "/nowhere")[0] == 404
    status, reply = post_query(host, port, "alias", "def broken(:\n")
    assert status == 400 and reply["error"] == "invalid_snippet"


def test_serve_slow_loris_cut_off_with_408(daemon):
    server, host, port = daemon
    status = slow_loris(host, port, duration=3.0)
    assert status == 408
    # and the daemon is still fine
    assert http_request(host, port, "GET", "/healthz")[0] == 200


def test_serve_malformed_bytes_answered_not_fatal(daemon):
    server, host, port = daemon
    status = malformed_client(host, port)
    assert status == 400
    assert http_request(host, port, "GET", "/healthz")[0] == 200


def test_serve_worker_kill_invisible_to_next_request(daemon):
    server, host, port = daemon
    status, reply = http_request(host, port, "POST", "/chaosz")
    assert status == 200 and reply["killed"]
    status, reply = post_query(host, port, "alias", make_snippet(4, 91))
    assert status == 200 and reply["n_sites"] == 4
    status, stats = http_request(host, port, "GET", "/statz")
    assert stats["pool"]["crashes"] + stats["pool"]["timeouts"] >= 0
    assert stats["pool"]["respawns"] >= 1


def test_serve_request_deadline_override_maps_to_504(daemon):
    server, host, port = daemon
    status, reply = post_query(host, port, "alias", make_snippet(1500, 55),
                               deadline_seconds=0.02)
    assert status == 504
    assert reply["error"] == "deadline_exceeded"
    assert reply["attempts"]  # the ladder trail explains the failure


def test_serve_reload_swaps_specs_and_invalidates_cache(tmp_path):
    specs_path = tmp_path / "specs.json"
    specs_path.write_text(_specs_fixture_text())
    with serve_daemon(specs_path=str(specs_path)) as (server, host, port):
        code = make_snippet(4, 3)
        assert post_query(host, port, "alias", code)[0] == 200
        assert post_query(host, port, "alias", code)[1]["cached"]
        old_digest = server.specs_digest
        specs_path.write_text(specs_to_json(
            SpecSet([RetSame(method="Dict.pop")]), {}))
        server.request_reload()  # what the SIGHUP handler calls
        deadline = time.monotonic() + 30
        while server.stats.reloads < 1 and time.monotonic() < deadline:
            time.sleep(0.02)
        assert server.stats.reloads == 1
        assert server.specs_digest != old_digest
        status, stats = http_request(host, port, "GET", "/statz")
        assert stats["n_specs"] == 1
        # new digest → new cache namespace: the old entry cannot hit
        status, reply = post_query(host, port, "alias", code)
        assert status == 200 and not reply.get("cached")


def test_serve_reload_failure_keeps_old_specs(tmp_path):
    specs_path = tmp_path / "specs.json"
    specs_path.write_text(_specs_fixture_text())
    with serve_daemon(specs_path=str(specs_path)) as (server, host, port):
        digest = server.specs_digest
        specs_path.unlink()
        server.request_reload()
        time.sleep(0.3)
        assert server.specs_digest == digest  # kept serving
        assert http_request(host, port, "GET", "/statz")[1]["n_specs"] == 2


def test_serve_overload_sheds_explicit_429():
    with serve_daemon(workers=1, max_queue=1) as (server, host, port):
        replies = []
        lock = threading.Lock()

        def one(i):
            try:
                status, reply = post_query(
                    host, port, "alias", make_snippet(600, 100 + i),
                    timeout=60)
            except (OSError, ConnectionError):
                status, reply = 0, {}
            with lock:
                replies.append(status)

        threads = [threading.Thread(target=one, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert len(replies) == 8
        assert 0 not in replies  # every request got an explicit reply
        assert replies.count(200) >= 1
        assert replies.count(429) >= 1  # shed, not queued into collapse
        assert server.stats.shed == replies.count(429)


def test_serve_drain_finishes_inflight_then_exits():
    with serve_daemon(workers=1) as (server, host, port):
        outcome = {}

        def slow_request():
            outcome["reply"] = post_query(host, port, "alias",
                                          make_snippet(2000, 77), timeout=60)

        thread = threading.Thread(target=slow_request, daemon=True)
        thread.start()
        time.sleep(0.1)  # let the request reach the pool
        server.request_stop()  # what the SIGTERM handler does
        thread.join(timeout=60)
        status, reply = outcome["reply"]
        assert status == 200 and reply["n_sites"] == 2000
    # the context manager asserts the daemon thread exited cleanly


def test_run_load_zero_drops_under_chaos():
    with serve_daemon(chaos_enabled=True) as (server, host, port):
        report = run_load(LoadConfig(
            host=host, port=port, requests=12, arrival="fixed:0.02",
            sizes="fixed:5", cache_ratio=0.5, seed=11, timeout=60,
            chaos=("kill-worker", "malformed", "slow-loris"),
            chaos_every=4,
        ))
        assert report.n_sent == 12
        assert report.n_dropped == 0  # the contract under test
        assert report.n_ok >= 1
        replied = (report.n_ok + report.n_shed + report.n_deadline
                   + report.n_rejected)
        assert replied == report.n_sent
        assert report.chaos_kills >= 1
        assert report.to_dict()["p50_seconds"] >= 0.0


def test_load_report_percentiles():
    from repro.serve.loadgen import LoadReport

    report = LoadReport(latencies=[0.1 * i for i in range(1, 11)])
    assert report.percentile(50) == pytest.approx(0.5)
    assert report.percentile(99) == pytest.approx(1.0)
    out = LoadReport().to_dict()
    assert "p50_seconds" not in out  # no samples, no lies


# ----------------------------------------------------------------------
# warm-restart snapshots and the reload/drain race


def test_serve_reload_racing_drain_is_ignored(tmp_path):
    specs_path = tmp_path / "specs.json"
    specs_path.write_text(_specs_fixture_text())
    with serve_daemon(specs_path=str(specs_path),
                      workers=1) as (server, host, port):
        outcome = {}

        def slow_request():
            outcome["reply"] = post_query(host, port, "alias",
                                          make_snippet(2000, 78), timeout=60)

        thread = threading.Thread(target=slow_request, daemon=True)
        thread.start()
        time.sleep(0.1)  # let the request reach the pool
        digest = server.specs_digest
        server.request_stop()  # SIGTERM: the drain begins
        deadline = time.monotonic() + 30
        while not server._draining and time.monotonic() < deadline:
            time.sleep(0.01)
        assert server._draining
        # SIGHUP lands mid-drain with new specs on disk: it must be
        # ignored — a reload here would clear stats/cache under the
        # in-flight handler and stamp a snapshot for a dying process
        specs_path.write_text(specs_to_json(
            SpecSet([RetSame(method="Dict.pop")]), {}))
        server.request_reload()
        thread.join(timeout=60)
        status, reply = outcome["reply"]
        assert status == 200 and reply["n_sites"] == 2000  # drain held
        assert server.stats.reloads == 0  # the reload never happened
        assert server.specs_digest == digest
    # the context manager asserted the daemon exited; the drain must
    # not have resurrected accepting state or left a worker behind
    assert server.pool.alive == 0


def test_serve_warm_restart_first_query_cached(tmp_path):
    specs_path = tmp_path / "specs.json"
    specs_path.write_text(_specs_fixture_text())
    warm = tmp_path / "warm.usps"
    code = make_snippet(5, variant=42)
    with serve_daemon(specs_path=str(specs_path),
                      warm_path=str(warm)) as (server, host, port):
        status, reply = post_query(host, port, "alias", code)
        assert status == 200 and not reply.get("cached")
    assert warm.exists()  # stamped at the end of the drain

    with serve_daemon(specs_path=str(specs_path),
                      warm_path=str(warm)) as (server, host, port):
        assert server.warm_entries >= 1
        # the restarted daemon's FIRST query answers from the previous
        # process's cache — a rolling restart never cold-starts
        status, reply = post_query(host, port, "alias", code)
        assert status == 200 and reply["cached"]
        status, ready = http_request(host, port, "GET", "/readyz")
        assert ready["specs_digest"] == server.specs_digest[:12]
        assert ready["snapshot_age_seconds"] >= 0.0
        assert ready["warm_entries"] >= 1


def test_serve_warm_snapshot_carries_specs_without_specs_path(tmp_path):
    specs_path = tmp_path / "specs.json"
    specs_path.write_text(_specs_fixture_text())
    warm = tmp_path / "warm.usps"
    with serve_daemon(specs_path=str(specs_path),
                      warm_path=str(warm)) as (server, host, port):
        digest = server.specs_digest
    # a rolling restart that lost its --specs flag still serves the
    # previous process's specification set
    with serve_daemon(warm_path=str(warm)) as (server, host, port):
        assert server.specs_digest == digest
        status, stats = http_request(host, port, "GET", "/statz")
        assert stats["n_specs"] == 2


def test_serve_stale_warm_snapshot_skips_cache_preload(tmp_path):
    specs_path = tmp_path / "specs.json"
    specs_path.write_text(_specs_fixture_text())
    warm = tmp_path / "warm.usps"
    code = make_snippet(4, variant=43)
    with serve_daemon(specs_path=str(specs_path),
                      warm_path=str(warm)) as (server, host, port):
        assert post_query(host, port, "alias", code)[0] == 200
    # the specs changed between the two processes: the old cache
    # entries belong to the old digest and must not be preloaded
    specs_path.write_text(specs_to_json(
        SpecSet([RetSame(method="Dict.pop")]), {}))
    with serve_daemon(specs_path=str(specs_path),
                      warm_path=str(warm)) as (server, host, port):
        assert server.warm_entries == 0
        status, reply = post_query(host, port, "alias", code)
        assert status == 200 and not reply.get("cached")


def test_serve_corrupt_warm_snapshot_cold_starts(tmp_path):
    specs_path = tmp_path / "specs.json"
    specs_path.write_text(_specs_fixture_text())
    warm = tmp_path / "warm.usps"
    warm.write_bytes(b"this is not a snapshot")
    with serve_daemon(specs_path=str(specs_path),
                      warm_path=str(warm)) as (server, host, port):
        assert server.warm_entries == 0  # cold start, not a crash
        assert http_request(host, port, "GET", "/healthz")[0] == 200
    assert (tmp_path / "warm.usps.corrupt").exists()  # quarantined


def test_run_load_report_includes_readyz():
    with serve_daemon() as (server, host, port):
        report = run_load(LoadConfig(
            host=host, port=port, requests=3, arrival="fixed:0.01",
            sizes="fixed:4", seed=2, timeout=60))
        ready = report.to_dict()["readyz"]
        assert ready["breaker"] == "closed"
        assert ready["status"] == "ready"
        assert "specs_digest" in ready and "snapshot_age_seconds" in ready
