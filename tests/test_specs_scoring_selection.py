"""Tests for candidate scoring (§5.2) and selection/extension (§5.3–5.4)."""

import pytest

from repro.specs import (
    RetArg,
    RetSame,
    SpecSet,
    average_top_k,
    extend_with_retsame,
    match_count_score,
    max_score,
    percentile_score,
    select_specs,
)
from repro.specs.candidates import CandidateExtraction, CandidateStats
from repro.specs.scoring import score_candidates


def test_average_top_k_uses_best_k():
    gamma = [0.1] * 90 + [0.9] * 10
    assert average_top_k(gamma, len(gamma), k=10) == pytest.approx(0.9)


def test_average_top_k_with_fewer_than_k():
    assert average_top_k([0.4, 0.8], 2, k=10) == pytest.approx(0.6)


def test_average_top_k_empty():
    assert average_top_k([], 0) == 0.0


def test_low_confidences_do_not_hurt_much():
    """§5.2: Γ_S is expected to contain low values (Fig. 4); the score
    must be driven by the high ones."""
    mostly_low = [0.05] * 50 + [0.95] * 12
    assert average_top_k(mostly_low, 62, k=10) > 0.9


def test_max_and_percentile_scores():
    gamma = [i / 100 for i in range(100)]
    assert max_score(gamma, 100) == pytest.approx(0.99)
    assert percentile_score(gamma, 100, pct=95.0) == pytest.approx(0.94)
    assert percentile_score([], 0) == 0.0


def test_match_count_score_monotone_and_bounded():
    values = [match_count_score([], m) for m in (1, 5, 20, 100)]
    assert values == sorted(values)
    assert all(0 <= v < 1 for v in values)


def test_score_candidates_applies_scorer():
    extraction = CandidateExtraction()
    spec = RetSame("A.get")
    extraction.stats[spec] = CandidateStats(confidences=[0.2, 0.9], matches=2)
    scores = score_candidates(extraction, max_score)
    assert scores[spec] == pytest.approx(0.9)


def test_select_specs_threshold():
    scores = {RetSame("A.get"): 0.7, RetSame("B.get"): 0.5}
    selected = select_specs(scores, tau=0.6)
    assert RetSame("A.get") in selected
    assert RetSame("B.get") not in selected


def test_extension_invariant():
    """Eq. (3): RetArg(t, s, x) ∈ S ⟹ RetSame(t) ∈ S."""
    specs = SpecSet([RetArg("Map.get", "Map.put", 2)])
    extended = extend_with_retsame(specs)
    assert RetSame("Map.get") in extended
    for spec in extended:
        if isinstance(spec, RetArg):
            assert RetSame(spec.target) in extended


def test_extension_idempotent():
    specs = SpecSet([RetArg("Map.get", "Map.put", 2), RetSame("Map.get")])
    extended = extend_with_retsame(specs)
    assert len(extended) == len(specs)


def test_specset_lookups():
    specs = SpecSet([
        RetArg("Map.get", "Map.put", 2),
        RetSame("Map.get"),
        RetSame("List.get"),
    ])
    assert specs.has_retsame("Map.get")
    assert not specs.has_retsame("Map.put")
    retargs = specs.retargs_with_source("Map.put")
    assert len(retargs) == 1
    assert specs.api_classes() == frozenset({"Map", "List"})


def test_specset_union():
    a = SpecSet([RetSame("A.get")])
    b = SpecSet([RetSame("B.get")])
    assert len(a | b) == 2


def test_retarg_validates_index():
    with pytest.raises(ValueError):
        RetArg("A.get", "A.put", 0)


def test_candidate_extraction_merge():
    a = CandidateExtraction()
    b = CandidateExtraction()
    spec = RetSame("A.get")
    a.stats[spec] = CandidateStats(confidences=[0.5], matches=1, files={"x"})
    b.stats[spec] = CandidateStats(confidences=[0.7], matches=2, files={"y"})
    a.merge(b)
    assert a.stats[spec].matches == 3
    assert sorted(a.stats[spec].confidences) == [0.5, 0.7]
    assert a.stats[spec].files == {"x", "y"}
