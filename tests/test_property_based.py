"""Property-based tests (hypothesis) on core data structures and invariants."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.events import RET, HistoryBuilder, HistoryOptions, build_event_graph
from repro.ir import FunctionBuilder, ProgramBuilder, Var
from repro.model.logistic import LogisticRegression, TrainConfig
from repro.pointsto import analyze
from repro.pointsto.ghost import ArgValues, ghost_reads, ghost_writes
from repro.pointsto.objects import LitVal
from repro.specs import (
    RetArg,
    RetSame,
    SpecSet,
    average_top_k,
    extend_with_retsame,
    max_score,
    percentile_score,
    select_specs,
)

# ----------------------------------------------------------------------
# random IR programs


_METHODS = ["A.make", "A.use", "B.get", "B.put", "C.read"]


@st.composite
def small_programs(draw):
    """A random straight-line/branchy program over a small API alphabet."""
    pb = ProgramBuilder(source="prop.java")
    b = pb.function("main")
    variables = [b.alloc("Root")]

    def emit_ops(n_ops: int, depth: int) -> None:
        for _ in range(n_ops):
            op = draw(st.integers(min_value=0, max_value=5))
            if op == 0:
                variables.append(b.alloc(draw(st.sampled_from("TUV"))))
            elif op == 1:
                variables.append(
                    b.const(draw(st.sampled_from(["k", "x", 1, 2])))
                )
            elif op == 2:
                recv = draw(st.sampled_from(variables))
                nargs = draw(st.integers(min_value=0, max_value=2))
                args = [draw(st.sampled_from(variables)) for _ in range(nargs)]
                out = b.call(draw(st.sampled_from(_METHODS)), receiver=recv,
                             args=args, returns=draw(st.booleans()))
                if out is not None:
                    variables.append(out)
            elif op == 3 and depth < 2:
                cond = b.const(True)
                inner = draw(st.integers(min_value=0, max_value=3))
                with b.if_(cond) as node:
                    emit_ops(inner, depth + 1)
                with b.else_(node):
                    emit_ops(draw(st.integers(min_value=0, max_value=2)),
                             depth + 1)
            elif op == 4 and depth < 2:
                cond = b.const(True)
                with b.while_(cond):
                    emit_ops(draw(st.integers(min_value=0, max_value=3)),
                             depth + 1)
            else:
                b.assign(b.fresh("copy"), draw(st.sampled_from(variables)))

    emit_ops(draw(st.integers(min_value=1, max_value=10)), 0)
    pb.add(b.finish())
    return pb.finish()


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(small_programs())
def test_event_graph_invariants(program):
    """Structural invariants of §3.3 hold for arbitrary programs."""
    result = analyze(program)
    histories = HistoryBuilder(program, result).build()
    graph = build_event_graph(histories)

    for e in graph.events:
        # no self-edges
        assert not graph.has_edge(e, e)
        # parents/children are consistent
        for child in graph.children(e):
            assert e in graph.parents(child)
        # allocation events are ret events without parents
        if graph.is_allocation(e):
            assert e.pos == RET and not graph.parents(e)
        # alloc(e) only contains allocation events, and contains e iff
        # e itself is an allocation event
        allocs = graph.alloc(e)
        assert all(graph.is_allocation(a) for a in allocs)
        assert (e in allocs) == graph.is_allocation(e)

    # antisymmetry: no 2-cycles
    for e1, e2 in graph.edges():
        assert not graph.has_edge(e2, e1)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(small_programs())
def test_history_bounds(program):
    result = analyze(program)
    options = HistoryOptions(max_len=7, max_histories=4)
    histories = HistoryBuilder(program, result, options).build()
    for _, hs in histories.items():
        assert all(len(h) <= options.max_len for h in hs)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(small_programs())
def test_contexts_contain_event(program):
    """Every path in ctx_{G,k}(e) includes e and respects the bound."""
    result = analyze(program)
    graph = build_event_graph(HistoryBuilder(program, result).build())
    for e in list(graph.events)[:10]:
        for path in graph.contexts(e, k=2):
            assert e in path
            assert 1 <= len(path) <= 2


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(small_programs())
def test_pointsto_monotone_in_specs(program):
    """Adding specifications never removes points-to facts (the ghost
    rules only add objects)."""
    from repro.ir.traversal import iter_calls

    base = analyze(program)
    specs = SpecSet([RetSame("B.get"), RetArg("B.get", "B.put", 2)])
    augmented = analyze(program, specs=specs)
    for site in base.api_sites:
        call = site.instr
        if call.dst is None:
            continue
        fn, ctx = base.site_owner(site)
        before = base.var_pts(fn, ctx, call.dst)
        after = augmented.var_pts(fn, ctx, call.dst)
        assert before <= after


# ----------------------------------------------------------------------
# scoring


@given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1,
                max_size=50),
       st.integers(min_value=1, max_value=20))
def test_average_top_k_bounds(confidences, k):
    score = average_top_k(confidences, len(confidences), k=k)
    assert min(confidences) - 1e-9 <= score <= max(confidences) + 1e-9
    # dominated by the max and at least the overall mean
    assert score >= sum(confidences) / len(confidences) - 1e-9


@given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1,
                max_size=50))
def test_scorers_ordering(confidences):
    n = len(confidences)
    assert max_score(confidences, n) >= average_top_k(confidences, n) - 1e-9
    assert 0.0 <= percentile_score(confidences, n) <= 1.0


@given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1,
                max_size=30),
       st.floats(min_value=0.5, max_value=1.0))
def test_adding_high_confidence_never_lowers_score(confidences, high):
    before = average_top_k(confidences, len(confidences), k=10)
    extended = confidences + [max(high, max(confidences))]
    after = average_top_k(extended, len(extended), k=10)
    assert after >= before - 1e-9


# ----------------------------------------------------------------------
# specification sets


_spec_strategy = st.one_of(
    st.builds(RetSame, st.sampled_from(["A.get", "B.get", "C.read", "D.m"])),
    st.builds(RetArg,
              st.sampled_from(["A.get", "B.get", "C.read"]),
              st.sampled_from(["A.put", "B.put", "C.write"]),
              st.integers(min_value=1, max_value=3)),
)


@given(st.lists(_spec_strategy, max_size=15))
def test_extension_closure(specs):
    extended = extend_with_retsame(SpecSet(specs))
    # invariant (3) of the paper holds
    for spec in extended:
        if isinstance(spec, RetArg):
            assert RetSame(spec.target) in extended
    # idempotence
    assert set(extend_with_retsame(extended)) == set(extended)
    # the extension only adds, never removes
    assert set(specs) <= set(extended)


@given(st.dictionaries(_spec_strategy,
                       st.floats(min_value=0.0, max_value=1.0), max_size=15),
       st.floats(min_value=0.0, max_value=1.0),
       st.floats(min_value=0.0, max_value=1.0))
def test_selection_monotone_in_tau(scores, tau1, tau2):
    low, high = min(tau1, tau2), max(tau1, tau2)
    assert set(select_specs(scores, high)) <= set(select_specs(scores, low))


# ----------------------------------------------------------------------
# ghost fields


_arg_values = st.builds(
    ArgValues,
    st.frozensets(st.builds(LitVal, st.sampled_from(["a", "b", 1, 2])),
                  max_size=3),
    st.booleans(),
)


@given(st.lists(_arg_values, max_size=3), st.booleans(),
       st.integers(min_value=1, max_value=8))
def test_ghost_reads_bounded_and_deterministic(args, coverage, max_combos):
    specs = SpecSet([RetSame("M.get")])
    fields1, eligible1 = ghost_reads("M.get", args, specs, coverage, max_combos)
    fields2, eligible2 = ghost_reads("M.get", args, specs, coverage, max_combos)
    assert fields1 == fields2 and eligible1 == eligible2
    assert eligible1 <= fields1
    exact = [f for f in fields1 if f.kind == "exact"]
    assert len(exact) <= max_combos


@given(st.lists(_arg_values, min_size=2, max_size=2), st.booleans())
def test_ghost_writes_only_with_stored_objects(args, coverage):
    specs = SpecSet([RetArg("M.get", "M.put", 2)])
    writes = ghost_writes("M.put", args, [frozenset(), frozenset()],
                          specs, coverage)
    assert writes == set()  # nothing to store → nothing written


# ----------------------------------------------------------------------
# logistic regression


@given(st.lists(st.tuples(
    st.frozensets(st.integers(min_value=0, max_value=63), min_size=1,
                  max_size=6),
    st.integers(min_value=0, max_value=1)), min_size=1, max_size=40))
def test_logistic_probabilities_valid(examples):
    model = LogisticRegression(dim=64, config=TrainConfig(epochs=2))
    model.fit([(tuple(sorted(f)), label) for f, label in examples])
    for f, _ in examples:
        p = model.predict_proba(tuple(sorted(f)))
        assert 0.0 <= p <= 1.0
