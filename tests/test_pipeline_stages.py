"""Stage-level tests for the pipeline and the table renderers."""

import pytest

from repro.corpus import CorpusConfig, CorpusGenerator, java_registry
from repro.eval.tables import format_table, tab3_rows, specs_by_package
from repro.model.model import EventPairModel
from repro.specs import PipelineConfig, RetArg, RetSame, SpecSet, USpecPipeline
from repro.specs.candidates import CandidateExtraction, CandidateStats


@pytest.fixture(scope="module")
def small_setup():
    registry = java_registry()
    programs = CorpusGenerator(registry,
                               CorpusConfig(n_files=40, seed=31)).programs()
    pipeline = USpecPipeline()
    bundles = pipeline.analyze_corpus(programs)
    return registry, pipeline, bundles


def test_analyze_corpus_produces_bundles(small_setup):
    _, _, bundles = small_setup
    assert len(bundles) == 40
    assert all(b.graph.events for b in bundles if b.graph.edge_count)


def test_train_model_covers_position_keys(small_setup):
    _, pipeline, bundles = small_setup
    model = pipeline.train_model(bundles)
    assert isinstance(model, EventPairModel)
    assert ("ret", "0") in model.position_keys


def test_extract_then_score_then_select(small_setup):
    registry, pipeline, bundles = small_setup
    model = pipeline.train_model(bundles)
    extraction = pipeline.extract_candidates(bundles, model)
    assert len(extraction) > 0
    scores = pipeline.score(extraction)
    assert set(scores) == set(extraction.candidates())
    selected = pipeline.select(scores, tau=0.0)
    # at tau 0 everything scored is selected (plus extensions)
    assert all(s in selected for s in scores)
    none_selected = pipeline.select(scores, tau=1.1)
    assert len(none_selected) == 0


def test_custom_scorer_passthrough(small_setup):
    _, pipeline, bundles = small_setup
    model = pipeline.train_model(bundles)
    extraction = pipeline.extract_candidates(bundles, model)
    ones = pipeline.score(extraction, scorer=lambda confs, m: 1.0)
    assert all(v == 1.0 for v in ones.values())


def test_pipeline_config_disable_extension():
    pipeline = USpecPipeline(PipelineConfig(extend=False))
    scores = {RetArg("A.get", "A.put", 2): 0.9}
    selected = pipeline.select(scores)
    assert RetSame("A.get") not in selected


# ----------------------------------------------------------------------
# table renderers


def _extraction_with(spec, matches=3, confs=(0.9, 0.8)):
    e = CandidateExtraction()
    e.stats[spec] = CandidateStats(confidences=list(confs), matches=matches,
                                   files={"f.java"})
    return e


def test_tab3_rows_marks_incorrect():
    registry = java_registry()
    good = RetArg("java.util.HashMap.get", "java.util.HashMap.put", 2)
    bad = RetSame("java.util.Iterator.next")
    extraction = _extraction_with(good)
    extraction.merge(_extraction_with(bad))
    rows = tab3_rows({good: 0.9, bad: 0.8}, extraction, registry)
    flags = {row[1]: row[4] for row in rows}
    assert flags[str(good)] == ""
    assert flags[str(bad)] == "incorrect"


def test_tab3_rows_sorted_by_score():
    registry = java_registry()
    a = RetSame("A.x")
    b = RetSame("B.y")
    extraction = _extraction_with(a)
    extraction.merge(_extraction_with(b))
    rows = tab3_rows({a: 0.3, b: 0.9}, extraction, registry)
    assert rows[0][1] == str(b)


def test_specs_by_package_counts_classes():
    registry = java_registry()
    specs = SpecSet([
        RetArg("java.util.HashMap.get", "java.util.HashMap.put", 2),
        RetSame("java.util.HashMap.get"),
        RetArg("java.util.TreeMap.get", "java.util.TreeMap.put", 2),
    ])
    rows = specs_by_package(specs, registry)
    assert rows[0] == ["java.util", 3, 2]


def test_format_table_title_and_empty():
    text = format_table(["a"], [], title="T")
    assert text.splitlines()[0] == "T"
    assert len(text.splitlines()) == 3  # title + header + separator
