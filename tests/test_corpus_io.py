"""Tests for corpus persistence and fault-tolerant directory mining."""

from pathlib import Path

from repro.cli import main
from repro.corpus import (
    CorpusConfig,
    CorpusGenerator,
    java_registry,
    mine_directory,
    python_registry,
    save_corpus,
)


def test_save_and_mine_roundtrip(tmp_path):
    registry = java_registry()
    generator = CorpusGenerator(registry, CorpusConfig(n_files=12, seed=4))
    files = generator.generate()
    paths = save_corpus(files, tmp_path / "corpus")
    assert len(paths) == 12
    assert all(p.exists() for p in paths)

    report = mine_directory(tmp_path / "corpus", registry.signatures())
    assert report.n_parsed == 12
    assert report.skipped == []


def test_mining_is_recursive(tmp_path):
    (tmp_path / "a" / "b").mkdir(parents=True)
    (tmp_path / "a" / "b" / "deep.py").write_text("x = make()\n")
    (tmp_path / "top.py").write_text("y = other()\n")
    report = mine_directory(tmp_path)
    assert report.n_parsed == 2


def test_mining_skips_unparsable_files(tmp_path):
    (tmp_path / "good.py").write_text("x = f()\n")
    (tmp_path / "broken.py").write_text("def broken(:\n")
    (tmp_path / "broken.java").write_text("int x = ;")
    report = mine_directory(tmp_path)
    assert report.n_parsed == 1
    assert len(report.skipped) == 2
    reasons = {p.name: reason for p, reason in report.skipped}
    assert "SyntaxError" in reasons["broken.py"]


def test_mining_ignores_other_suffixes(tmp_path):
    (tmp_path / "notes.txt").write_text("not code")
    (tmp_path / "data.json").write_text("{}")
    report = mine_directory(tmp_path)
    assert report.n_parsed == 0 and report.skipped == []


def test_mining_limit(tmp_path):
    for i in range(5):
        (tmp_path / f"f{i}.py").write_text("x = f()\n")
    report = mine_directory(tmp_path, limit=3)
    assert report.n_parsed == 3


def test_mining_mixed_languages(tmp_path):
    registry = python_registry()
    (tmp_path / "a.py").write_text("d = {}\nd['k'] = v()\n")
    (tmp_path / "b.java").write_text("x = api.make();\n")
    report = mine_directory(tmp_path, registry.signatures())
    languages = {p.language for p in report.programs}
    assert languages == {"python", "minijava"}


def test_cli_learn_from_dir(tmp_path, capsys):
    registry = python_registry()
    files = CorpusGenerator(registry, CorpusConfig(n_files=25, seed=6)).generate()
    save_corpus(files, tmp_path / "mine")
    out_file = tmp_path / "specs.json"
    code = main(["learn", "--language", "python",
                 "--from-dir", str(tmp_path / "mine"),
                 "--out", str(out_file)])
    assert code == 0
    assert out_file.exists()
    assert "mined" in capsys.readouterr().out


def test_cli_learn_from_empty_dir(tmp_path, capsys):
    (tmp_path / "empty").mkdir()
    code = main(["learn", "--from-dir", str(tmp_path / "empty")])
    assert code == 2
