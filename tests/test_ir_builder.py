"""Tests for the IR instruction set and builders."""

import pytest

from repro.ir import (
    Alloc,
    Assign,
    Call,
    Const,
    FieldLoad,
    FieldStore,
    FunctionBuilder,
    If,
    ProgramBuilder,
    Return,
    Var,
    While,
    iter_calls,
    iter_instructions,
)


def test_vars_are_value_objects():
    assert Var("x") == Var("x")
    assert Var("x") != Var("y")
    assert len({Var("x"), Var("x")}) == 1


def test_instructions_use_identity_equality():
    a = Alloc(Var("x"), "T")
    b = Alloc(Var("x"), "T")
    assert a == a
    assert a != b
    assert len({a, b}) == 2


def test_builder_emits_in_order():
    b = FunctionBuilder("main")
    x = b.alloc("HashMap")
    k = b.const("key")
    b.call("java.util.HashMap.put", receiver=x, args=[k, k], returns=False)
    fn = b.finish()
    kinds = [type(i).__name__ for i in fn.body]
    assert kinds == ["Alloc", "Const", "Call"]


def test_builder_fresh_vars_are_unique():
    b = FunctionBuilder("f")
    names = {b.fresh().name for _ in range(100)}
    assert len(names) == 100


def test_call_defaults():
    b = FunctionBuilder("f")
    recv = b.alloc("T")
    dst = b.call("T.m", receiver=recv, args=[recv])
    call = fn_last_call(b)
    assert call.dst == dst
    assert call.nargs == 1
    assert call.arg_types == ("?",)


def fn_last_call(builder):
    return [s for s in builder._stack[0] if isinstance(s, Call)][-1]


def test_void_call_has_no_dst():
    b = FunctionBuilder("f")
    recv = b.alloc("T")
    out = b.call("T.m", receiver=recv, returns=False)
    assert out is None
    assert fn_last_call(b).dst is None


def test_structured_if_else():
    b = FunctionBuilder("f")
    c = b.const(True)
    with b.if_(c) as node:
        b.alloc("A")
    with b.else_(node):
        b.alloc("B")
    fn = b.finish()
    (const, if_node) = fn.body
    assert isinstance(if_node, If)
    assert isinstance(if_node.then_body[0], Alloc)
    assert if_node.then_body[0].type_name == "A"
    assert if_node.else_body[0].type_name == "B"


def test_structured_while():
    b = FunctionBuilder("f")
    c = b.const(True)
    with b.while_(c):
        b.alloc("A")
    fn = b.finish()
    assert isinstance(fn.body[1], While)


def test_unclosed_block_raises():
    b = FunctionBuilder("f")
    c = b.const(True)
    b._stack.append([])  # simulate an unclosed block
    with pytest.raises(RuntimeError):
        b.finish()


def test_iter_instructions_recurses():
    b = FunctionBuilder("f")
    c = b.const(1)
    with b.while_(c):
        with b.if_(c) as node:
            b.alloc("A")
        with b.else_(node):
            b.alloc("B")
    fn = b.finish()
    allocs = [i for i in iter_instructions(fn.body) if isinstance(i, Alloc)]
    assert {a.type_name for a in allocs} == {"A", "B"}


def test_iter_calls():
    b = FunctionBuilder("f")
    x = b.alloc("T")
    b.call("T.m", receiver=x)
    with b.while_(x):
        b.call("T.n", receiver=x)
    fn = b.finish()
    assert [c.method for c in iter_calls(fn)] == ["T.m", "T.n"]


def test_program_builder_entry_check():
    pb = ProgramBuilder(entry="main")
    pb.add(FunctionBuilder("helper").finish())
    with pytest.raises(ValueError):
        pb.finish()


def test_program_resolve():
    pb = ProgramBuilder()
    pb.add(FunctionBuilder("main").finish())
    pb.add(FunctionBuilder("helper").finish())
    prog = pb.finish()
    assert prog.resolve("helper") is prog.functions["helper"]
    assert prog.resolve("java.util.HashMap.get") is None
    assert prog.entry_function is prog.functions["main"]
