"""Remaining coverage: traversal, histories API, atlas details, reprs."""

import pytest

from repro.baselines.atlas import AtlasConfig, AtlasSpec, run_atlas
from repro.baselines.dynamic_api import DynamicClass, DynHashMap
from repro.events import HistoryBuilder, build_event_graph
from repro.ir import (
    FunctionBuilder,
    ProgramBuilder,
    Var,
    format_program,
    iter_statements,
)
from repro.ir.traversal import iter_program_instructions
from repro.pointsto import analyze


def _program_with_helper():
    pb = ProgramBuilder()
    helper = pb.function("helper", params=["p"])
    helper.call("Lib.use", receiver=Var("p"), returns=False)
    pb.add(helper.finish())
    main = pb.function("main")
    x = main.alloc("T")
    main.call("helper", args=[x], returns=False)
    pb.add(main.finish())
    return pb.finish()


def test_iter_program_instructions_covers_all_functions():
    program = _program_with_helper()
    methods = [i.method for i in iter_program_instructions(program)
               if hasattr(i, "method")]
    assert "Lib.use" in methods and "helper" in methods


def test_iter_statements_yields_structured_nodes():
    b = FunctionBuilder("f")
    c = b.const(True)
    with b.if_(c):
        b.alloc("A")
    fn = b.finish()
    kinds = [type(s).__name__ for s in iter_statements(fn.body)]
    assert "If" in kinds and "Alloc" in kinds


def test_histories_accessors():
    program = _program_with_helper()
    res = analyze(program)
    histories = HistoryBuilder(program, res).build()
    objs = list(histories.objects())
    assert objs
    for obj in objs:
        assert histories.of(obj)
    assert "objects" in repr(histories)


def test_history_of_unknown_object_empty():
    program = _program_with_helper()
    res = analyze(program)
    histories = HistoryBuilder(program, res).build()
    assert histories.of(object()) == frozenset()


def test_graph_repr_and_counts():
    program = _program_with_helper()
    res = analyze(program)
    g = build_event_graph(HistoryBuilder(program, res).build())
    assert f"{len(g.events)} events" in repr(g)
    assert g.edge_count == sum(1 for _ in g.edges())


# ----------------------------------------------------------------------
# atlas details


def test_atlas_spec_str():
    spec = AtlasSpec("java.util.HashMap", "get", "put", 2)
    assert "get" in str(spec) and "put[2]" in str(spec)


def test_atlas_custom_class():
    cls = DynamicClass("custom.Box", DynHashMap, ("put", "get"))
    (result,) = run_atlas([cls], AtlasConfig(n_tests=120, max_sequence=6))
    flows = {(s.reader, s.writer, s.arg_index) for s in result.specs}
    assert ("get", "put", 2) in flows


def test_atlas_empty_methods():
    cls = DynamicClass("custom.Empty", DynHashMap, ())
    (result,) = run_atlas([cls], AtlasConfig(n_tests=3))
    assert result.specs == []


# ----------------------------------------------------------------------
# printer / repr smoke across types


def test_format_program_round_readable():
    program = _program_with_helper()
    text = format_program(program)
    assert "func main" in text and "func helper" in text
    assert "Lib.use" in text


def test_instruction_reprs_use_uids():
    from repro.ir.instructions import Alloc

    a = Alloc(Var("x"), "T")
    b = Alloc(Var("x"), "T")
    assert a.uid != b.uid
    from repro.pointsto.objects import ObjAlloc

    assert repr(ObjAlloc(a)) != repr(ObjAlloc(b))


def test_var_ordering():
    assert sorted([Var("b"), Var("a")]) == [Var("a"), Var("b")]


def test_program_repr():
    program = _program_with_helper()
    assert "entry=main" in repr(program)
