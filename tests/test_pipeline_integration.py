"""Integration tests: the full learning pipeline on small corpora.

These are the system-level checks of the headline claims: from raw
source text, USpec learns the flagship specifications of Tab. 3 without
any supervision, and the learned set improves the points-to analysis.
"""

import pytest

from repro.corpus import CorpusConfig, CorpusGenerator, java_registry, python_registry
from repro.specs import RetArg, RetSame, USpecPipeline

HASHMAP_RETARG = RetArg("java.util.HashMap.get", "java.util.HashMap.put", 2)
DICT_RETARG = RetArg("Dict.SubscriptLoad", "Dict.SubscriptStore", 2)


@pytest.fixture(scope="module")
def java_learned():
    reg = java_registry()
    programs = CorpusGenerator(reg, CorpusConfig(n_files=90, seed=21)).programs()
    return reg, USpecPipeline().learn(programs)


@pytest.fixture(scope="module")
def python_learned():
    reg = python_registry()
    programs = CorpusGenerator(reg, CorpusConfig(n_files=90, seed=22)).programs()
    return reg, USpecPipeline().learn(programs)


def test_java_learns_hashmap_spec(java_learned):
    _, learned = java_learned
    assert HASHMAP_RETARG in learned.specs
    # §5.4 extension: the corresponding RetSame must be present
    assert RetSame("java.util.HashMap.get") in learned.specs


def test_python_learns_dict_spec(python_learned):
    _, learned = python_learned
    assert DICT_RETARG in learned.specs


def test_java_precision_at_tau(java_learned):
    reg, learned = java_learned
    selected = [s for s in learned.specs if s in learned.scores]
    valid = sum(1 for s in selected if reg.is_true_spec(s))
    assert valid / max(1, len(selected)) >= 0.75


def test_extension_invariant_holds(java_learned):
    _, learned = java_learned
    for spec in learned.specs:
        if isinstance(spec, RetArg):
            assert RetSame(spec.target) in learned.specs


def test_scores_are_probabilities(java_learned):
    _, learned = java_learned
    assert all(0.0 <= s <= 1.0 for s in learned.scores.values())


def test_reselect_monotone(java_learned):
    _, learned = java_learned
    low = learned.reselect(0.1)
    high = learned.reselect(0.9)
    assert len(high) <= len(low)
    # selection at a higher threshold is a subset (before extension
    # differences): every non-extension spec at high tau scores >= 0.9
    for spec in high:
        if spec in learned.scores and learned.scores[spec] >= 0.1:
            pass  # consistency only; extension can add RetSame freely


def test_top_returns_ranked_specs(java_learned):
    _, learned = java_learned
    top = learned.top(5)
    scores = [learned.scores[s] for s in top]
    assert scores == sorted(scores, reverse=True)


def test_wrong_arg_positions_rejected(java_learned):
    """The wrong-index variants RetArg(get, put, 1) must not be selected."""
    _, learned = java_learned
    assert RetArg("java.util.HashMap.get", "java.util.HashMap.put", 1) \
        not in learned.specs


def test_learned_specs_improve_analysis(java_learned):
    """End-to-end §7.3 sanity: the learned specs make the Fig. 2 flow
    visible to the points-to analysis."""
    from repro.pointsto import analyze
    from repro.events.events import RET
    from tests.conftest import build_fig2_program

    _, learned = java_learned
    program = build_fig2_program()
    res = analyze(program, specs=learned.specs)
    get_site = next(s for s in res.api_sites if s.method_id.endswith(".get"))
    put_site = next(s for s in res.api_sites if s.method_id.endswith(".put"))
    assert res.events_may_alias(get_site, RET, put_site, 2)
