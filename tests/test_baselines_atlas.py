"""Tests for the Atlas baseline (paper §7.5)."""

import pytest

from repro.baselines import (
    AtlasConfig,
    default_dynamic_registry,
    run_atlas,
)
from repro.baselines.atlas import (
    STATUS_FRESH,
    STATUS_NO_CONSTRUCTOR,
    STATUS_OK,
)


@pytest.fixture(scope="module")
def results():
    return {r.cls: r for r in run_atlas(default_dynamic_registry())}


def test_hashmap_flow_learned(results):
    r = results["java.util.HashMap"]
    assert r.status == STATUS_OK
    flows = {(s.reader, s.writer, s.arg_index) for s in r.specs}
    assert ("get", "put", 2) in flows


def test_atlas_specs_are_key_insensitive(results):
    for r in results.values():
        assert all(not s.key_sensitive for s in r.specs)


def test_constructorless_classes_fail(results):
    """§7.5: ResultSet, KeyStore, NodeList — Atlas cannot instantiate."""
    for cls in ("java.sql.ResultSet", "java.security.KeyStore",
                "org.w3c.dom.NodeList"):
        assert results[cls].status == STATUS_NO_CONSTRUCTOR
        assert results[cls].specs == []


def test_properties_learned_unsoundly_fresh(results):
    """§7.5: Atlas 'essentially learned that any call of these functions
    returns a new object' for Properties."""
    r = results["java.util.Properties"]
    assert r.status == STATUS_FRESH
    assert r.specs == []


def test_jsonobject_partial_coverage(results):
    """§7.5: exception-throwing accessors abort tests."""
    r = results["org.json.JSONObject"]
    assert r.tests_crashed > 0


def test_arraylist_sound_flows(results):
    flows = {(s.reader, s.writer, s.arg_index)
             for s in results["java.util.ArrayList"].specs}
    assert ("get", "add", 1) in flows
    assert ("get", "set", 2) in flows


def test_deterministic(results):
    again = {r.cls: r for r in run_atlas(default_dynamic_registry())}
    for cls, r in results.items():
        assert [str(s) for s in r.specs] == [str(s) for s in again[cls].specs]


def test_config_scales_tests():
    quick = run_atlas(default_dynamic_registry(), AtlasConfig(n_tests=5))
    assert all(r.tests_run in (0, 5) for r in quick)


def test_string_identity_not_counted_as_aliasing():
    """Interned keys/strings must not fake flows (sentinels only)."""
    for r in run_atlas(default_dynamic_registry()):
        for s in r.specs:
            # every learned flow's position must be a value position in
            # the dynamic models (keys are positions 1 of put/set only
            # for map-like classes)
            assert (s.reader, s.writer, s.arg_index) != ("get", "get", 1)
