"""Failure injection and robustness: malformed inputs, empty corpora,
degenerate configurations."""

import pytest

from repro.cli import main
from repro.corpus import CorpusConfig, CorpusGenerator, java_registry
from repro.corpus.io import mine_directory
from repro.events import HistoryBuilder, build_event_graph
from repro.frontend.minijava import ParseError, parse_minijava
from repro.frontend.pyfront import parse_python
from repro.ir import ProgramBuilder
from repro.model.model import EventPairModel
from repro.pointsto import analyze
from repro.runtime import BUDGET_EXCEEDED, Budget, RuntimeConfig
from repro.specs import USpecPipeline
from repro.specs.pipeline import PipelineConfig


# ----------------------------------------------------------------------
# frontend robustness


@pytest.mark.parametrize("source", [
    "int x = ;",
    "if (a {",
    "class {",
    'x = "unterminated;',
    "for (;;;;) {}",
])
def test_minijava_rejects_malformed_input(source):
    with pytest.raises((ParseError, SyntaxError)):
        parse_minijava(source)


def test_python_frontend_rejects_syntax_errors():
    with pytest.raises(SyntaxError):
        parse_python("def broken(:\n")


@pytest.mark.parametrize("source", [
    "",  # empty file
    "# only a comment\n",
    "x = ...\n",  # Ellipsis constant
    "match x:\n    case 1:\n        pass\n",  # newer syntax nodes
    "y = (lambda a: a)(1)\n",
    "z = [i async for i in agen()] if False else []\n",
])
def test_python_frontend_survives_odd_but_valid_code(source):
    program = parse_python(source)
    assert "main" in program.functions


def test_minijava_empty_file():
    program = parse_minijava("")
    assert program.entry_function.body == []


# ----------------------------------------------------------------------
# pipeline degenerate inputs


def test_pipeline_on_empty_corpus():
    learned = USpecPipeline().learn([])
    assert len(learned.specs) == 0
    assert learned.scores == {}


def test_pipeline_on_eventless_programs():
    pb = ProgramBuilder()
    pb.add(pb.function("main").finish())
    learned = USpecPipeline().learn([pb.finish()])
    assert len(learned.specs) == 0


def test_model_predict_before_fit():
    from repro.model.features import PairFeature

    model = EventPairModel()
    p = model.predict(PairFeature(0, 0, frozenset(), frozenset(), frozenset()))
    assert 0.0 <= p <= 1.0


def test_analysis_of_empty_program():
    pb = ProgramBuilder()
    pb.add(pb.function("main").finish())
    program = pb.finish()
    res = analyze(program)
    histories = HistoryBuilder(program, res).build()
    graph = build_event_graph(histories)
    assert len(graph.events) == 0
    assert list(graph.receiver_pairs()) == []


def test_history_of_unreachable_function_is_empty():
    pb = ProgramBuilder()
    dead = pb.function("dead")
    api = dead.alloc("Api")
    dead.call("Api.use", receiver=api, returns=False)
    pb.add(dead.finish())
    pb.add(pb.function("main").finish())
    program = pb.finish()
    res = analyze(program)
    histories = HistoryBuilder(program, res).build()
    assert len(histories) == 0  # only entry-reachable code is walked


# ----------------------------------------------------------------------
# pipeline-level fault containment (repro.runtime)


def _deep_call_chain_program(depth=2500):
    """A pathological single-chain program exceeding small solver budgets."""
    pb = ProgramBuilder(source="deep_chain.java")
    fb = pb.function("main")
    v = fb.alloc("Api")
    for _ in range(depth):
        w = fb.fresh()
        fb.assign(w, v)
        v = w
    fb.call("Api.use", receiver=v, returns=False)
    pb.add(fb.finish())
    return pb.finish()


def test_pathological_program_is_quarantined_not_fatal():
    """Acceptance: a corpus with one budget-blowing program still yields
    specs from the healthy programs plus one quarantine entry."""
    healthy = CorpusGenerator(
        java_registry(), CorpusConfig(n_files=10, seed=7)).programs()
    corpus = healthy + [_deep_call_chain_program()]
    config = PipelineConfig(runtime=RuntimeConfig(
        budget=Budget(max_solver_iterations=500)))

    learned = USpecPipeline(config).learn(corpus)  # must not raise

    assert len(learned.specs) > 0  # healthy programs still produced specs
    run = learned.run
    assert run is not None
    assert run.n_ok == len(healthy)
    assert run.n_quarantined == 1
    entry = run.manifest.entries[0]
    assert entry.source == "deep_chain.java"
    assert entry.error_kind == BUDGET_EXCEEDED
    # the whole degradation ladder was attempted before quarantining
    assert [a.tier for a in entry.attempts] == [
        "context-sensitive", "context-insensitive", "field-insensitive",
    ]


# ----------------------------------------------------------------------
# mining containment (taxonomy-labelled skips)


def test_mine_directory_labels_parse_failures(tmp_path):
    (tmp_path / "ok.py").write_text("x = 1\n")
    (tmp_path / "broken.py").write_text("def broken(:\n")
    report = mine_directory(tmp_path)
    assert report.n_parsed == 1
    assert len(report.skipped) == 1
    assert report.skipped[0][1].startswith("ParseFailure:")
    assert report.skipped_by_kind() == {"ParseFailure": 1}


def test_mine_directory_contains_os_errors(tmp_path, monkeypatch):
    (tmp_path / "gone.py").write_text("x = 1\n")
    real_read = type(tmp_path).read_bytes

    def flaky_read(self, *args, **kwargs):
        if self.name == "gone.py":
            raise OSError("I/O error reading device")
        return real_read(self, *args, **kwargs)

    monkeypatch.setattr(type(tmp_path), "read_bytes", flaky_read)
    report = mine_directory(tmp_path)
    assert report.n_parsed == 0
    assert report.skipped[0][1].startswith("ReadFailure: OSError")


def test_mine_directory_contains_recursion_errors(tmp_path, monkeypatch):
    (tmp_path / "deep.py").write_text("x = 1\n")

    def exploding_parse(*args, **kwargs):
        raise RecursionError("maximum recursion depth exceeded")

    monkeypatch.setattr("repro.corpus.io.parse_python", exploding_parse)
    report = mine_directory(tmp_path)
    assert report.n_parsed == 0
    assert report.skipped[0][1].startswith("ParseFailure: RecursionError")


def test_mine_directory_contains_unicode_errors(tmp_path):
    # real undecodable bytes behind a source suffix — no monkeypatching:
    # the strict-UTF-8 decode in mine_directory must quarantine them
    (tmp_path / "weird.py").write_bytes(b"x = 1\xff\xfe\n")
    report = mine_directory(tmp_path)
    assert report.n_parsed == 0
    assert report.skipped[0][1].startswith("ReadFailure: UnicodeDecodeError")


# ----------------------------------------------------------------------
# CLI failure modes


def test_cli_missing_file(capsys):
    assert main(["analyze", "/nonexistent/file.py"]) == 2
    assert "no such file" in capsys.readouterr().err


def test_cli_bad_specs_file(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text('{"format": "wrong"}')
    target = tmp_path / "t.py"
    target.write_text("x = 1\n")
    assert main(["analyze", str(target), "--specs", str(bad)]) == 2


def test_cli_syntax_error_in_target(tmp_path, capsys):
    target = tmp_path / "broken.py"
    target.write_text("def broken(:\n")
    assert main(["analyze", str(target)]) == 2


def test_cli_reproduce_tiny(tmp_path, capsys):
    out = tmp_path / "report.txt"
    assert main(["reproduce", "--files", "15", "--seed", "3",
                 "--out", str(out)]) == 0
    text = out.read_text()
    assert "Fig. 7 (java)" in text
    assert "Atlas baseline" in text
