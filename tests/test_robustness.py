"""Failure injection and robustness: malformed inputs, empty corpora,
degenerate configurations."""

import pytest

from repro.cli import main
from repro.corpus import java_registry
from repro.events import HistoryBuilder, build_event_graph
from repro.frontend.minijava import ParseError, parse_minijava
from repro.frontend.pyfront import parse_python
from repro.ir import ProgramBuilder
from repro.model.model import EventPairModel
from repro.pointsto import analyze
from repro.specs import USpecPipeline


# ----------------------------------------------------------------------
# frontend robustness


@pytest.mark.parametrize("source", [
    "int x = ;",
    "if (a {",
    "class {",
    'x = "unterminated;',
    "for (;;;;) {}",
])
def test_minijava_rejects_malformed_input(source):
    with pytest.raises((ParseError, SyntaxError)):
        parse_minijava(source)


def test_python_frontend_rejects_syntax_errors():
    with pytest.raises(SyntaxError):
        parse_python("def broken(:\n")


@pytest.mark.parametrize("source", [
    "",  # empty file
    "# only a comment\n",
    "x = ...\n",  # Ellipsis constant
    "match x:\n    case 1:\n        pass\n",  # newer syntax nodes
    "y = (lambda a: a)(1)\n",
    "z = [i async for i in agen()] if False else []\n",
])
def test_python_frontend_survives_odd_but_valid_code(source):
    program = parse_python(source)
    assert "main" in program.functions


def test_minijava_empty_file():
    program = parse_minijava("")
    assert program.entry_function.body == []


# ----------------------------------------------------------------------
# pipeline degenerate inputs


def test_pipeline_on_empty_corpus():
    learned = USpecPipeline().learn([])
    assert len(learned.specs) == 0
    assert learned.scores == {}


def test_pipeline_on_eventless_programs():
    pb = ProgramBuilder()
    pb.add(pb.function("main").finish())
    learned = USpecPipeline().learn([pb.finish()])
    assert len(learned.specs) == 0


def test_model_predict_before_fit():
    from repro.model.features import PairFeature

    model = EventPairModel()
    p = model.predict(PairFeature(0, 0, frozenset(), frozenset(), frozenset()))
    assert 0.0 <= p <= 1.0


def test_analysis_of_empty_program():
    pb = ProgramBuilder()
    pb.add(pb.function("main").finish())
    program = pb.finish()
    res = analyze(program)
    histories = HistoryBuilder(program, res).build()
    graph = build_event_graph(histories)
    assert len(graph.events) == 0
    assert list(graph.receiver_pairs()) == []


def test_history_of_unreachable_function_is_empty():
    pb = ProgramBuilder()
    dead = pb.function("dead")
    api = dead.alloc("Api")
    dead.call("Api.use", receiver=api, returns=False)
    pb.add(dead.finish())
    pb.add(pb.function("main").finish())
    program = pb.finish()
    res = analyze(program)
    histories = HistoryBuilder(program, res).build()
    assert len(histories) == 0  # only entry-reachable code is walked


# ----------------------------------------------------------------------
# CLI failure modes


def test_cli_missing_file(capsys):
    assert main(["analyze", "/nonexistent/file.py"]) == 2
    assert "no such file" in capsys.readouterr().err


def test_cli_bad_specs_file(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text('{"format": "wrong"}')
    target = tmp_path / "t.py"
    target.write_text("x = 1\n")
    assert main(["analyze", str(target), "--specs", str(bad)]) == 2


def test_cli_syntax_error_in_target(tmp_path, capsys):
    target = tmp_path / "broken.py"
    target.write_text("def broken(:\n")
    assert main(["analyze", str(target)]) == 2


def test_cli_reproduce_tiny(tmp_path, capsys):
    out = tmp_path / "report.txt"
    assert main(["reproduce", "--files", "15", "--seed", "3",
                 "--out", str(out)]) == 0
    text = out.read_text()
    assert "Fig. 7 (java)" in text
    assert "Atlas baseline" in text
