"""Edge cases of the points-to driver and solver."""

import pytest

from repro.events.events import RET
from repro.ir import ProgramBuilder, Var
from repro.pointsto import PointsToOptions, analyze
from repro.specs import RetArg, RetSame, SpecSet

GET = "M.get"
PUT = "M.put"
SPECS = SpecSet([RetSame(GET), RetArg(GET, PUT, 2)])


def test_event_pts_out_of_range_positions(fig2_program):
    res = analyze(fig2_program)
    site = res.api_sites[0]
    assert res.event_pts(site, 99) == frozenset()


def test_event_pts_requires_call_site(fig2_program):
    from repro.events.events import Site
    from repro.ir.instructions import Alloc

    res = analyze(fig2_program)
    alloc = Alloc(Var("x"), "T")
    with pytest.raises(TypeError):
        res.event_pts(Site(alloc), RET)


def test_void_call_ret_pts_empty():
    pb = ProgramBuilder()
    b = pb.function("main")
    m = b.alloc("M")
    b.call("M.touch", receiver=m, returns=False)
    pb.add(b.finish())
    res = analyze(pb.finish())
    site = res.api_sites[0]
    assert res.event_pts(site, RET) == frozenset()


def test_recursive_functions_terminate():
    pb = ProgramBuilder()
    rec = pb.function("loop", params=["p"])
    rec.call("loop", args=[Var("p")], dst=Var("r"))
    rec.ret(Var("r"))
    pb.add(rec.finish())
    main = pb.function("main")
    x = main.alloc("T")
    main.call("loop", args=[x], dst=Var("out"))
    pb.add(main.finish())
    res = analyze(pb.finish())  # must not diverge
    assert res.reachable


def test_mutually_recursive_functions_terminate():
    pb = ProgramBuilder()
    f = pb.function("f", params=["p"])
    f.call("g", args=[Var("p")], returns=False)
    pb.add(f.finish())
    g = pb.function("g", params=["q"])
    g.call("f", args=[Var("q")], returns=False)
    pb.add(g.finish())
    main = pb.function("main")
    x = main.alloc("T")
    main.call("f", args=[x], returns=False)
    pb.add(main.finish())
    assert analyze(pb.finish()).reachable


def test_ghost_fields_do_not_leak_across_receivers():
    pb = ProgramBuilder()
    b = pb.function("main")
    m1 = b.alloc("M")
    m2 = b.alloc("M")
    k1 = b.const("k")
    v = b.alloc("V", dst=Var("v"))
    b.call(PUT, receiver=m1, args=[k1, v], returns=False)
    k2 = b.const("k")
    b.call(GET, receiver=m2, args=[k2], dst=Var("got"))
    pb.add(b.finish())
    res = analyze(pb.finish(), specs=SPECS)
    got = res.var_pts("main", (), Var("got"))
    stored = res.var_pts("main", (), Var("v"))
    assert not res.may_alias(got, stored)


def test_max_combos_caps_fanout():
    """Many possible key values: the ghost-field product is bounded."""
    pb = ProgramBuilder()
    b = pb.function("main")
    m = b.alloc("M")
    cond = b.const(True)
    key = Var("key")
    b.assign(key, b.const("k0"))
    for i in range(1, 10):
        with b.if_(cond):
            b.assign(key, b.const(f"k{i}"))
    v = b.alloc("V")
    b.call(PUT, receiver=m, args=[key, v], returns=False)
    b.call(GET, receiver=m, args=[key], dst=Var("got"))
    pb.add(b.finish())
    res = analyze(pb.finish(), specs=SPECS,
                  options=PointsToOptions(max_combos=4))
    assert res.var_pts("main", (), Var("got"))  # analysis completed


def test_num_ghost_objects_counter():
    pb = ProgramBuilder()
    b = pb.function("main")
    m = b.alloc("M")
    k = b.const("k")
    b.call(GET, receiver=m, args=[k], dst=Var("a"))
    pb.add(b.finish())
    res = analyze(pb.finish(), specs=SPECS)
    assert res.num_ghost_objects == 1


def test_repr_smoke(fig2_program):
    res = analyze(fig2_program)
    text = repr(res)
    assert "api sites" in text


def test_retsame_applies_through_loops():
    """Flow-insensitivity of the solver: a get inside a loop still reads
    the field written before the loop."""
    pb = ProgramBuilder()
    b = pb.function("main")
    m = b.alloc("M")
    k = b.const("k")
    v = b.alloc("V", dst=Var("v"))
    b.call(PUT, receiver=m, args=[k, v], returns=False)
    cond = b.const(True)
    with b.while_(cond):
        k2 = b.const("k")
        b.call(GET, receiver=m, args=[k2], dst=Var("got"))
    pb.add(b.finish())
    res = analyze(pb.finish(), specs=SPECS)
    assert res.may_alias(res.var_pts("main", (), Var("got")),
                         res.var_pts("main", (), Var("v")))
