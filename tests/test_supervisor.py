"""Fault-tolerant shard supervision: chaos modes (kill / hang /
corrupt), retry with backoff, poison-shard bisection, the failure
ledger, cache-budget eviction, and spawn-context dispatch."""

import json
import math
import os

import pytest

from repro.cli import main
from repro.corpus import CorpusConfig, CorpusGenerator, java_registry
from repro.ir import ProgramBuilder
from repro.mining import MiningConfig, MiningEngine
from repro.mining.cache import (
    AnalysisCache,
    BUNDLE_SUFFIX,
    QUARANTINE_SUFFIX,
)
from repro.mining.supervisor import DeadlineTracker, SupervisionConfig
from repro.runtime import (
    ChaosPlan,
    ChaosSpec,
    RuntimeConfig,
    WORKER_CRASH,
    WORKER_TIMEOUT,
    WorkerCrash,
)
from repro.specs.pipeline import PipelineConfig
from repro.specs.serialize import specs_to_json


def java_corpus(n=8, seed=7):
    return CorpusGenerator(
        java_registry(), CorpusConfig(n_files=n, seed=seed)).programs()


def toxic_program(name):
    """A tiny valid program; chaos kills the worker before it matters."""
    pb = ProgramBuilder(source=name)
    fb = pb.function("main")
    v = fb.alloc("Api")
    fb.call("Api.use", receiver=v, returns=False)
    pb.add(fb.finish())
    return pb.finish()


def learn(programs, *, jobs=1, shards=None, cache_dir=None,
          cache_budget=None, mp_context=None, strict=False,
          chaos=None, max_retries=2, shard_deadline=None):
    config = PipelineConfig(runtime=RuntimeConfig(strict=strict))
    supervision = SupervisionConfig(
        max_retries=max_retries,
        shard_deadline=shard_deadline,
        backoff_base=0.01,  # keep test wall-clock down
        chaos=ChaosPlan(chaos) if chaos else None,
    )
    mining = MiningConfig(
        jobs=jobs, shards=shards,
        cache_dir=str(cache_dir) if cache_dir else None,
        cache_budget=cache_budget, mp_context=mp_context,
        supervision=supervision,
    )
    return MiningEngine(config, mining).learn(programs)


def specs_text(learned):
    return specs_to_json(learned.specs, learned.scores)


# ----------------------------------------------------------------------
# chaos modes


def test_transient_kill_is_retried_and_specs_match_clean():
    programs = java_corpus()
    clean = learn(programs)
    chaos = [ChaosSpec("corpus_00003", "kill", until_attempt=1)]
    learned = learn(programs, jobs=2, chaos=chaos)
    assert specs_text(learned) == specs_text(clean)
    ledger = learned.mining.ledger
    assert ledger.n_worker_crashes == 1
    assert ledger.n_retries == 1
    assert ledger.n_poisoned == 0
    assert learned.mining.n_quarantined == 0
    assert learned.mining.supervised


def test_toxic_kill_is_bisected_and_quarantined():
    programs = java_corpus()
    clean = learn(programs)
    chaos = [ChaosSpec("corpus_00003", "kill")]
    learned = learn(programs, jobs=2, chaos=chaos)
    ledger = learned.mining.ledger
    assert ledger.n_poisoned == 1
    assert ledger.n_bisections >= 1
    manifest = learned.run.manifest
    assert [e.program for e in manifest.entries] \
        == ["000003:corpus_00003.java"]
    assert manifest.entries[0].error_kind == WORKER_CRASH
    # a poisoned task's record carries the taxonomy label
    poisoned = [t for t in ledger.tasks if t.poisoned]
    assert [t.poisoned for t in poisoned] == [WORKER_CRASH]
    # the surviving programs still learn something, and the clean run
    # proves the corpus was healthy before injection
    assert learned.specs and clean.specs
    assert learned.mining.n_quarantined == 1


def test_hang_is_reclaimed_by_deadline_and_quarantined():
    programs = java_corpus(n=2)
    chaos = [ChaosSpec("corpus_00001", "hang")]
    learned = learn(programs, shards=1, chaos=chaos, max_retries=0,
                    shard_deadline=1.0)
    ledger = learned.mining.ledger
    assert ledger.n_worker_timeouts >= 2  # whole shard, then singleton
    assert ledger.n_poisoned == 1
    manifest = learned.run.manifest
    assert manifest.entries[0].error_kind == WORKER_TIMEOUT
    assert "corpus_00001" in manifest.entries[0].program


def test_transient_corrupt_result_is_retried():
    programs = java_corpus()
    clean = learn(programs)
    chaos = [ChaosSpec("corpus_00002", "corrupt", until_attempt=1)]
    learned = learn(programs, jobs=2, chaos=chaos)
    assert specs_text(learned) == specs_text(clean)
    ledger = learned.mining.ledger
    assert ledger.n_corrupt_results == 1
    assert ledger.n_poisoned == 0


# ----------------------------------------------------------------------
# bisection


def test_bisection_converges_in_logarithmic_attempts():
    n = 8
    programs = java_corpus(n=n)
    chaos = [ChaosSpec("corpus_00005", "kill")]
    learned = learn(programs, shards=1, chaos=chaos, max_retries=0)
    analyze = [t for t in learned.mining.ledger.tasks
               if t.phase == "analyze"]
    depth = int(math.log2(n))
    # root + two children per bisection level; only the toxic half
    # fails at each level
    assert sum(len(t.attempts) for t in analyze) <= 2 * depth + 1
    assert sum(1 for t in analyze if t.bisected) == depth
    assert sum(1 for t in analyze if t.poisoned) == 1
    assert learned.mining.n_quarantined == 1


def test_bisection_lineage_is_recorded_in_ledger():
    programs = java_corpus(n=4)
    chaos = [ChaosSpec("corpus_00000", "kill")]
    learned = learn(programs, shards=1, chaos=chaos, max_retries=0)
    payload = learned.mining.ledger.to_dict()
    ids = {t["task_id"] for t in payload["tasks"]}
    assert any("." in task_id for task_id in ids)  # e.g. "0.0"
    assert payload["n_bisections"] >= 1
    assert payload["n_poisoned"] == 1


# ----------------------------------------------------------------------
# strict mode and exit codes


def test_strict_toxic_kill_raises_worker_crash():
    programs = java_corpus(n=4)
    chaos = [ChaosSpec("corpus_00001", "kill")]
    with pytest.raises(WorkerCrash):
        learn(programs, jobs=2, chaos=chaos, strict=True, max_retries=1)


def test_cli_chaos_everything_poisoned_exits_4(tmp_path, capsys):
    code = main([
        "learn", "--files", "3", "--jobs", "2", "--max-retries", "0",
        "--chaos", "kill:corpus_",
        "--out", str(tmp_path / "specs.json"),
    ])
    assert code == 4
    assert "every corpus program was quarantined" in capsys.readouterr().err


def test_cli_strict_chaos_exits_2(tmp_path, capsys):
    code = main([
        "learn", "--files", "3", "--jobs", "2", "--max-retries", "0",
        "--strict", "--chaos", "kill:corpus_00001",
        "--out", str(tmp_path / "specs.json"),
    ])
    assert code == 2
    assert "attempt" in capsys.readouterr().err


def test_cli_transient_chaos_matches_clean_run(tmp_path):
    clean, chaotic = tmp_path / "clean.json", tmp_path / "chaos.json"
    assert main(["learn", "--files", "6", "--out", str(clean)]) == 0
    assert main([
        "learn", "--files", "6", "--jobs", "2",
        "--chaos", "kill:corpus_00002:1", "--out", str(chaotic),
    ]) == 0
    assert clean.read_bytes() == chaotic.read_bytes()


# ----------------------------------------------------------------------
# poisoned verdicts are cached


def test_poisoned_program_is_never_reattempted_warm(tmp_path):
    programs = java_corpus()
    chaos = [ChaosSpec("corpus_00003", "kill")]
    cold = learn(programs, jobs=2, chaos=chaos, cache_dir=tmp_path,
                 max_retries=0)
    assert cold.mining.ledger.n_poisoned == 1
    # warm re-run with the same chaos: the cached worker-crash verdict
    # wins before the worker ever touches the program, so chaos never
    # fires again
    warm = learn(programs, jobs=2, chaos=chaos, cache_dir=tmp_path,
                 max_retries=0)
    assert warm.mining.ledger.n_worker_crashes == 0
    assert warm.mining.ledger.n_poisoned == 0
    assert warm.mining.n_quarantined == 1
    assert specs_text(warm) == specs_text(cold)
    assert [e.error_kind for e in warm.run.manifest.entries] == [WORKER_CRASH]


# ----------------------------------------------------------------------
# spawn start method


def test_spawn_context_matches_sequential():
    programs = java_corpus(n=4)
    clean = learn(programs)
    spawned = learn(programs, jobs=2, shards=2, mp_context="spawn")
    assert specs_text(spawned) == specs_text(clean)
    assert spawned.mining.ledger.clean


# ----------------------------------------------------------------------
# cache budget (LRU-by-mtime eviction)


def _fake_entry(cache, name, size, mtime):
    path = cache.directory / name
    path.write_bytes(b"x" * size)
    os.utime(path, (mtime, mtime))
    return path


def test_evict_to_budget_removes_oldest_first(tmp_path):
    cache = AnalysisCache(tmp_path, "fp")
    old = _fake_entry(cache, f"aaaa{BUNDLE_SUFFIX}", 100, 1_000)
    mid = _fake_entry(cache, f"bbbb{QUARANTINE_SUFFIX}", 100, 2_000)
    new = _fake_entry(cache, f"cccc{BUNDLE_SUFFIX}", 100, 3_000)
    assert cache.total_bytes() == 300
    assert cache.evict_to_budget(200) == 1
    assert not old.exists() and mid.exists() and new.exists()
    assert cache.evict_to_budget(200) == 0  # already under budget
    assert cache.evict_to_budget(0) == 2
    assert cache.total_bytes() == 0


def test_evict_ties_break_by_name(tmp_path):
    cache = AnalysisCache(tmp_path, "fp")
    b = _fake_entry(cache, f"bbbb{BUNDLE_SUFFIX}", 10, 1_000)
    a = _fake_entry(cache, f"aaaa{BUNDLE_SUFFIX}", 10, 1_000)
    assert cache.evict_to_budget(10) == 1
    assert not a.exists() and b.exists()


def test_lookup_refreshes_recency(tmp_path):
    programs = java_corpus(n=2)
    learn(programs, cache_dir=tmp_path)
    entries = sorted(tmp_path.glob(f"*{BUNDLE_SUFFIX}"))
    assert len(entries) == 2
    # age both, then warm-run: lookups must touch the mtimes forward
    for path in entries:
        os.utime(path, (1_000, 1_000))
    learn(programs, cache_dir=tmp_path)
    assert all(p.stat().st_mtime > 1_000 for p in entries)


def test_engine_cache_budget_reports_evictions(tmp_path):
    programs = java_corpus(n=3)
    learned = learn(programs, cache_dir=tmp_path, cache_budget=1)
    assert learned.mining.n_evicted == 3
    assert learned.mining.to_dict()["n_evicted"] == 3
    # evictions only cost recomputes — the next run still succeeds
    again = learn(programs, cache_dir=tmp_path, cache_budget=None)
    assert again.mining.n_cached == 0
    assert specs_text(again) == specs_text(learned)


def test_cli_cache_budget_flag(tmp_path, capsys):
    cache = tmp_path / "cache"
    code = main([
        "learn", "--files", "3", "--cache-dir", str(cache),
        "--cache-budget", "1", "--out", str(tmp_path / "s.json"),
    ])
    assert code == 0
    assert "evicted 3 entries" in capsys.readouterr().out
    assert not list(cache.glob(f"*{BUNDLE_SUFFIX}"))


# ----------------------------------------------------------------------
# report plumbing


def test_report_carries_supervision_ledger():
    programs = java_corpus(n=4)
    chaos = [ChaosSpec("corpus_00002", "kill", until_attempt=1)]
    learned = learn(programs, jobs=2, chaos=chaos)
    payload = learned.mining.to_dict()
    assert payload["supervised"] is True
    supervision = payload["supervision"]
    assert supervision["n_worker_crashes"] == 1
    assert supervision["n_retries"] == 1
    # troubled tasks keep their attempt trail; clean ones are counters
    assert all(t["attempts"] for t in supervision["tasks"])
    assert json.dumps(payload)  # report stays JSON-serializable


def test_sequential_report_has_no_ledger():
    learned = learn(java_corpus(n=2))
    assert learned.mining.supervised is False
    assert learned.mining.to_dict()["supervision"] is None


# ----------------------------------------------------------------------
# dispatch batching (the coalescing floor) and its instrumentation


def test_small_shards_coalesce_into_few_round_trips():
    programs = java_corpus(n=16)
    learned = learn(programs, jobs=2, shards=8)
    dispatch = learned.mining.dispatch
    assert dispatch is not None
    # 8 analyze + 8 extract tasks, but the coalescing floor packs each
    # worker's fair share of the corpus into one frame: at most
    # jobs round trips per phase, not one per shard task
    assert dispatch["n_tasks_dispatched"] == 16
    assert dispatch["n_round_trips"] <= 2 * 2
    assert dispatch["n_batches"] >= 2
    assert dispatch["n_tasks_batched"] > dispatch["n_batches"]
    # only the first reply of each healthy frame is shape-revalidated
    assert dispatch["n_validations_skipped"] > 0
    # pipe traffic and serialisation time are observable
    assert dispatch["bytes_sent"] > 0 and dispatch["bytes_received"] > 0
    assert learned.mining.to_dict()["dispatch"] == dispatch


def test_batched_specs_byte_identical_to_sequential():
    programs = java_corpus(n=12)
    sequential = learn(programs)
    batched = learn(programs, jobs=4)
    assert specs_text(batched) == specs_text(sequential)
    assert batched.mining.ledger.clean
    assert batched.mining.dispatch["n_batches"] >= 1


def test_chaos_disables_coalescing():
    programs = java_corpus(n=8)
    chaos = [ChaosSpec("corpus_00003", "kill", until_attempt=1)]
    learned = learn(programs, jobs=2, chaos=chaos)
    dispatch = learned.mining.dispatch
    # fault injection targets single tasks; every frame stays singleton
    # so the chaos tests' exact attempt counts keep meaning something
    assert dispatch["n_batches"] == 0
    assert dispatch["n_validations_skipped"] == 0


def test_affinity_fast_path_skips_selection_scan():
    programs = java_corpus(n=8)
    # one supervised worker: every task's affinity can only name this
    # worker (or nothing), steals are impossible, and the 3-pass scan
    # must short-circuit on every single dispatch
    learned = learn(programs, jobs=1, shards=4, shard_deadline=60.0)
    dispatch = learned.mining.dispatch
    assert dispatch["n_round_trips"] > 0
    assert dispatch["n_select_fast"] == dispatch["n_round_trips"]
    # with several workers the extract queue mixes affinities, so only
    # some dispatches (the unpinned analyze phase) stay on the fast
    # path — but it must still fire
    mixed = learn(programs, jobs=2, shards=4).mining.dispatch
    assert 0 < mixed["n_select_fast"] <= mixed["n_round_trips"]


# ----------------------------------------------------------------------
# cache hit-rate reporting (ephemeral spill vs a real cache dir)


def test_spill_cache_hit_rate_is_null_not_zero():
    programs = java_corpus(n=4)
    learned = learn(programs, jobs=2)  # no cache dir: private spill
    assert learned.mining.cache_ephemeral is True
    assert learned.mining.cache_hit_rate is None
    assert learned.mining.to_dict()["cache_hit_rate"] is None


def test_real_cache_dir_still_reports_hit_rate(tmp_path):
    programs = java_corpus(n=4)
    cold = learn(programs, jobs=2, cache_dir=tmp_path)
    assert cold.mining.cache_ephemeral is False
    assert cold.mining.cache_hit_rate == 0.0  # cold but real: 0.0 is true
    warm = learn(programs, jobs=2, cache_dir=tmp_path)
    assert warm.mining.cache_hit_rate == 1.0
    assert specs_text(warm) == specs_text(cold)


# ----------------------------------------------------------------------
# the warm analyze fast path (pre-encoded sample sidecars)


def test_warm_run_absorbs_samples_from_sidecar(tmp_path):
    programs = java_corpus(n=6)
    cold = learn(programs, cache_dir=tmp_path)
    assert cold.mining.n_sample_hits == 0
    warm = learn(programs, cache_dir=tmp_path)
    assert warm.mining.n_analyzed == 0
    assert warm.mining.n_cached == len(programs)
    # statistics came from the sidecars: no bundle was unpickled and
    # nothing was re-sampled or re-encoded during analyze
    assert warm.mining.n_sample_hits == len(programs)
    assert specs_text(warm) == specs_text(cold)


def test_sidecar_warm_specs_match_for_parallel_jobs(tmp_path):
    programs = java_corpus(n=8)
    cold = learn(programs, cache_dir=tmp_path)
    warm = learn(programs, jobs=4, cache_dir=tmp_path)
    assert warm.mining.n_sample_hits == len(programs)
    assert specs_text(warm) == specs_text(cold)


def test_damaged_sidecar_degrades_to_bundle_reload(tmp_path):
    from repro.mining.cache import SAMPLES_SUFFIX

    programs = java_corpus(n=3)
    cold = learn(programs, cache_dir=tmp_path)
    sidecars = sorted(tmp_path.glob(f"*{SAMPLES_SUFFIX}"))
    assert len(sidecars) == 3
    data = bytearray(sidecars[0].read_bytes())
    data[len(data) // 2] ^= 0xFF
    sidecars[0].write_bytes(bytes(data))
    warm = learn(programs, cache_dir=tmp_path)
    # the damaged sidecar is quarantined; its program falls back to the
    # bundle-reload path, the other two stay on the fast path
    assert warm.mining.n_sample_hits == 2
    assert warm.mining.n_cached == 3
    assert specs_text(warm) == specs_text(cold)


# ----------------------------------------------------------------------
# acceptance: chaos on a 100-program corpus


@pytest.mark.slow
def test_acceptance_chaos_quarantines_only_toxins_byte_identical():
    survivors = java_corpus(n=100, seed=11)
    toxic = [toxic_program("toxic_kill.java"),
             toxic_program("toxic_hang.java")]
    corpus = survivors + toxic  # appended: survivor indices unchanged
    chaos = [ChaosSpec("toxic_kill", "kill"),
             ChaosSpec("toxic_hang", "hang")]
    clean = learn(survivors)
    learned = learn(corpus, jobs=2, shards=32, chaos=chaos,
                    max_retries=0, shard_deadline=3.0)
    # quarantines exactly the injected toxins, with worker-* labels
    kinds = {e.program: e.error_kind for e in learned.run.manifest.entries}
    assert kinds == {
        "000100:toxic_kill.java": WORKER_CRASH,
        "000101:toxic_hang.java": WORKER_TIMEOUT,
    }
    # byte-identical specs on the surviving programs
    assert specs_text(learned) == specs_text(clean)
    ledger = learned.mining.ledger
    assert ledger.n_poisoned == 2
    assert ledger.n_worker_crashes >= 1
    assert ledger.n_worker_timeouts >= 1


# ----------------------------------------------------------------------
# adaptive deadlines


def test_deadline_tracker_warmup_returns_fixed():
    tracker = DeadlineTracker(SupervisionConfig(
        shard_deadline=5.0, adaptive_deadline=True,
        deadline_min_samples=3))
    assert tracker.effective(10) == 5.0
    tracker.observe(0.2, 2)
    tracker.observe(0.3, 3)
    assert tracker.effective(10) == 5.0  # still below min samples


def test_deadline_tracker_scales_p95_by_slack_and_size():
    tracker = DeadlineTracker(SupervisionConfig(
        adaptive_deadline=True, deadline_slack=4.0,
        deadline_min_samples=3))
    for seconds in (0.1, 0.2, 0.3):  # one program each
        tracker.observe(seconds, 1)
    # p95 of [0.1, 0.2, 0.3] lands on the 0.2 sample (index 1 of 2)
    assert tracker.effective(1) == pytest.approx(0.2 * 4.0)
    assert tracker.effective(5) == pytest.approx(0.2 * 4.0 * 5)


def test_deadline_tracker_fixed_flag_is_a_floor():
    tracker = DeadlineTracker(SupervisionConfig(
        shard_deadline=60.0, adaptive_deadline=True,
        deadline_slack=2.0, deadline_min_samples=1))
    tracker.observe(0.01, 1)
    assert tracker.effective(1) == 60.0  # estimate far below the floor


def test_deadline_tracker_disabled_is_inert():
    tracker = DeadlineTracker(SupervisionConfig(
        shard_deadline=7.0, adaptive_deadline=False))
    tracker.observe(100.0, 1)
    assert tracker.samples == []
    assert tracker.effective(50) == 7.0
