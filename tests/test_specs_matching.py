"""Tests for pattern matching (paper §5.1): C1–C4, induced edges."""

import pytest

from repro.events import RET, HistoryBuilder, build_event_graph
from repro.ir import ProgramBuilder, Var
from repro.pointsto import analyze
from repro.specs import RetArg, RetSame, find_matches, induced_edges
from repro.specs.matching import equal_g

GET = "java.util.HashMap.get"
PUT = "java.util.HashMap.put"


def _graph(program):
    res = analyze(program)
    return build_event_graph(HistoryBuilder(program, res).build())


def _matches(graph, max_distance=10):
    out = []
    for pair in graph.receiver_pairs(max_distance):
        out.extend(find_matches(graph, pair))
    return out


def _map_put_get(key_put="key", key_get="key", use_result=True):
    pb = ProgramBuilder()
    b = pb.function("main")
    m = b.alloc("HashMap")
    k1 = b.const(key_put)
    db = b.alloc("Database")
    v = b.call("Database.getFile", receiver=db)
    b.call(PUT, receiver=m, args=[k1, v], returns=False)
    k2 = b.const(key_get)
    got = b.call(GET, receiver=m, args=[k2], returns=use_result)
    if use_result and got is not None:
        b.call("File.getName", receiver=got, returns=False)
    pb.add(b.finish())
    return pb.finish()


def test_retarg_match_on_fig2_shape():
    g = _graph(_map_put_get())
    specs = {m.spec for m in _matches(g)}
    assert RetArg(GET, PUT, 2) in specs


def test_no_match_with_different_keys():
    g = _graph(_map_put_get(key_put="a", key_get="b"))
    specs = {m.spec for m in _matches(g)}
    assert RetArg(GET, PUT, 2) not in specs


def test_no_match_on_different_receivers():
    pb = ProgramBuilder()
    b = pb.function("main")
    m1 = b.alloc("HashMap")
    m2 = b.alloc("HashMap")
    k1 = b.const("k")
    v = b.alloc("File")
    b.call(PUT, receiver=m1, args=[k1, v], returns=False)
    k2 = b.const("k")
    b.call(GET, receiver=m2, args=[k2])
    pb.add(b.finish())
    g = _graph(pb.finish())
    assert not _matches(g)


def test_retsame_match_same_args():
    pb = ProgramBuilder()
    b = pb.function("main")
    vg = b.alloc("ViewGroup")
    k1 = b.const(7)
    a = b.call("ViewGroup.find", receiver=vg, args=[k1])
    b.call("View.use", receiver=a, returns=False)
    k2 = b.const(7)
    bb = b.call("ViewGroup.find", receiver=vg, args=[k2])
    b.call("View.use2", receiver=bb, returns=False)
    pb.add(b.finish())
    g = _graph(pb.finish())
    specs = {m.spec for m in _matches(g)}
    assert RetSame("ViewGroup.find") in specs


def test_retsame_no_match_different_args():
    pb = ProgramBuilder()
    b = pb.function("main")
    vg = b.alloc("ViewGroup")
    k1 = b.const(7)
    b.call("ViewGroup.find", receiver=vg, args=[k1])
    k2 = b.const(8)
    b.call("ViewGroup.find", receiver=vg, args=[k2])
    pb.add(b.finish())
    g = _graph(pb.finish())
    specs = {m.spec for m in _matches(g)}
    assert RetSame("ViewGroup.find") not in specs


def test_retarg_requires_nargs_offset():
    """C1': nargs(s) must equal nargs(t) + 1."""
    pb = ProgramBuilder()
    b = pb.function("main")
    m = b.alloc("Thing")
    k = b.const("k")
    b.call("Thing.store", receiver=m, args=[k], returns=False)  # 1 arg
    k2 = b.const("k")
    b.call("Thing.load", receiver=m, args=[k2])  # 1 arg — not nargs+1
    pb.add(b.finish())
    g = _graph(pb.finish())
    retargs = [m for m in _matches(g) if isinstance(m.spec, RetArg)]
    assert not retargs


def test_constructors_excluded():
    pb = ProgramBuilder()
    b = pb.function("main")
    t = b.alloc("Thing")
    k = b.const("k")
    b.call("Thing.<init>", receiver=t, args=[k], returns=False)
    k2 = b.const("k")
    b.call("Thing.load", receiver=t, args=[k2])
    pb.add(b.finish())
    g = _graph(pb.finish())
    assert all("<init>" not in str(m.spec) for m in _matches(g))


def test_later_call_must_return_value():
    g = _graph(_map_put_get(use_result=False))
    assert not _matches(g)


def test_induced_edge_of_retarg(fig2_program):
    g = _graph(fig2_program)
    match = next(m for m in _matches(g) if isinstance(m.spec, RetArg))
    edges = induced_edges(match, g)
    assert len(edges) == 1
    ((e1, e2),) = edges
    assert e1.site.method_id == "SomeApi.getFile" and e1.pos == RET
    assert e2.site.method_id == "java.io.File.getName" and e2.pos == 0


def test_induced_edges_of_retsame():
    pb = ProgramBuilder()
    b = pb.function("main")
    vg = b.alloc("ViewGroup")
    k1 = b.const(7)
    a = b.call("ViewGroup.find", receiver=vg, args=[k1])
    b.call("View.tag", receiver=a, returns=False)
    k2 = b.const(7)
    bb = b.call("ViewGroup.find", receiver=vg, args=[k2])
    b.call("View.show", receiver=bb, returns=False)
    pb.add(b.finish())
    g = _graph(pb.finish())
    match = next(m for m in _matches(g) if isinstance(m.spec, RetSame))
    edges = induced_edges(match, g)
    assert len(edges) == 1
    ((e1, e2),) = edges
    assert e1.site.method_id == "View.tag"
    assert e2.site.method_id == "View.show"


def test_equal_g_uses_value_intersection(fig2_program):
    g = _graph(fig2_program)
    sites = {s.method_id: s for s in
             {e.site for e in g.events if e.site.is_api_call}}
    put, get = sites[PUT], sites[GET]
    assert equal_g(g, get, 1, put, 1)  # both "key"


def test_retarg_multi_key_alignment():
    """C4' with x in the middle: store(k1, v, k2) / load(k1, k2)."""
    pb = ProgramBuilder()
    b = pb.function("main")
    m = b.alloc("Grid")
    k1, k2 = b.const("row"), b.const("col")
    v = b.alloc("Cell")
    b.call("Grid.store", receiver=m, args=[k1, v, k2], returns=False)
    k1b, k2b = b.const("row"), b.const("col")
    got = b.call("Grid.load", receiver=m, args=[k1b, k2b])
    b.call("Cell.use", receiver=got, returns=False)
    pb.add(b.finish())
    g = _graph(pb.finish())
    specs = {m.spec for m in _matches(g)}
    assert RetArg("Grid.load", "Grid.store", 2) in specs
    assert RetArg("Grid.load", "Grid.store", 1) not in specs
    assert RetArg("Grid.load", "Grid.store", 3) not in specs
