"""Legacy shim so `python setup.py develop` works without build
isolation (offline environments); configuration lives in pyproject.toml."""

from setuptools import setup

setup(entry_points={"console_scripts": ["uspec = repro.cli:main"]})
